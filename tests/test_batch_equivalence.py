"""Batch execution must be byte-identical to row-at-a-time execution.

The equivalence oracle for the vectorized engine: every query result
under chunked batch execution — at any batch size, vectorization on or
off — must equal the reference produced with vectorization off at batch
size 1, which reproduces the historical row-at-a-time engine exactly.
Checked across all five architecture archetypes on a generated workload,
plus operator-level cases for the sharp edges (NULL/NaN join keys,
empty partitions, batch boundaries straddling group/sort runs).
"""

import math

import pytest

from repro.core.loader import Loader
from repro.engine.batch import DEFAULT_BATCH_SIZE, execution_config
from repro.engine.expr import Env
from repro.engine.plan import operators as ops
from repro.systems import make_system

#: batch sizes exercised against every query: degenerate (1), prime and
#: smaller than most partitions (7), the default, and larger than any
#: table in the workload (single-batch execution)
SIZES = (1, 7, DEFAULT_BATCH_SIZE, 10**6)

QUERIES = [
    # full-history scan + aggregation (Fig 2 shape)
    "SELECT count(*), sum(o_totalprice) FROM orders FOR SYSTEM_TIME ALL",
    # time travel: current partition pruning
    "SELECT count(*) FROM orders",
    # projection + filter + order + limit through _Finalize
    "SELECT o_orderkey, o_totalprice * 2 FROM orders"
    " WHERE o_totalprice > 1000 ORDER BY o_totalprice DESC, o_orderkey"
    " LIMIT 17",
    # equi join across tables
    "SELECT count(*), sum(o_totalprice) FROM orders o, customer c"
    " WHERE o.o_custkey = c.c_custkey",
    # grouped aggregation with HAVING
    "SELECT o_custkey, count(*) FROM orders GROUP BY o_custkey"
    " HAVING count(*) > 1 ORDER BY o_custkey",
    # DISTINCT projection
    "SELECT DISTINCT o_custkey FROM orders ORDER BY o_custkey",
    # set operation
    "SELECT o_custkey FROM orders WHERE o_totalprice > 5000"
    " UNION SELECT c_custkey FROM customer ORDER BY 1",
    # correlated subquery: the per-row fallback path
    "SELECT o_orderkey FROM orders o WHERE o_totalprice >"
    " (SELECT avg(o_totalprice) FROM orders i"
    "  WHERE i.o_custkey = o.o_custkey)"
    " ORDER BY o_orderkey LIMIT 11",
]


@pytest.fixture(scope="module")
def systems(tiny_workload):
    loaded = {}
    for name in "ABCDE":
        system = make_system(name)
        Loader(system, tiny_workload).load()
        loaded[name] = system
    return loaded


@pytest.mark.parametrize("name", list("ABCDE"))
def test_queries_identical_across_batch_sizes(systems, name):
    system = systems[name]
    for sql in QUERIES:
        with execution_config(size=1, vectorized=False):
            reference = system.execute(sql).rows
        for size in SIZES:
            for vectorized in (True, False):
                with execution_config(size=size, vectorized=vectorized):
                    got = system.execute(sql).rows
                assert got == reference, (name, sql, size, vectorized)


@pytest.mark.parametrize("name", list("ABCDE"))
def test_timeout_surface_is_config_independent(systems, name):
    # EXPLAIN ANALYZE actual row counts must not depend on the batch size
    system = systems[name]
    sql = "SELECT count(*) FROM orders FOR SYSTEM_TIME ALL"
    with execution_config(size=1, vectorized=False):
        reference = system.db.execute("EXPLAIN ANALYZE " + sql).rows
    with execution_config(size=7, vectorized=True):
        got = system.db.execute("EXPLAIN ANALYZE " + sql).rows

    def actuals(rows):
        return [
            line.split("actual rows=")[1].split(" ")[0]
            for (line,) in rows
            if "actual rows=" in line
        ]

    assert actuals(got) == actuals(reference)


# -- operator-level sharp edges --------------------------------------------


def _env():
    return Env({})


def col(i):
    return lambda row, env: row[i]


def _variants(make_op):
    """Rows of *make_op* under the reference config and every variant."""
    with execution_config(size=1, vectorized=False):
        reference = make_op().rows(_env())
    results = []
    for size in SIZES:
        for vectorized in (True, False):
            with execution_config(size=size, vectorized=vectorized):
                results.append(make_op().rows(_env()))
    return reference, results


NAN = float("nan")


def _canon(rows):
    """Rows with NaN made comparable (NaN != NaN breaks plain ==)."""
    return [
        tuple("NaN" if isinstance(v, float) and math.isnan(v) else v for v in row)
        for row in rows
    ]


class TestJoinKeyEdgeCases:
    LEFT = [(1, "a"), (None, "b"), (NAN, "c"), (2, "d"), (1, "e")]
    RIGHT = [(1, "x"), (None, "y"), (NAN, "z"), (3, "w"), (1, "v")]

    def test_hash_join_null_nan_keys(self):
        reference, results = _variants(lambda: ops.HashJoin(
            ops.Materialized(list(self.LEFT)),
            ops.Materialized(list(self.RIGHT)),
            [col(0)], [col(0)], right_width=2,
        ))
        # NULL keys match nothing; the 1-keys cross-match.  (A NaN key
        # that is the *same float object* on both sides does match —
        # Python's dict identity shortcut — on the row path and the
        # batch path alike, so equivalence still holds.)
        assert [r for r in _canon(reference) if r[0] == 1] == [
            (1, "a", 1, "x"), (1, "a", 1, "v"), (1, "e", 1, "x"), (1, "e", 1, "v")
        ]
        assert not any(r[0] is None for r in reference)
        for got in results:
            assert _canon(got) == _canon(reference)

    def test_merge_join_null_nan_keys(self):
        reference, results = _variants(lambda: ops.MergeJoin(
            ops.Materialized(list(self.LEFT)),
            ops.Materialized(list(self.RIGHT)),
            col(0), col(0),
        ))
        for got in results:
            assert _canon(got) == _canon(reference)

    def test_left_join_pads_unmatched(self):
        reference, results = _variants(lambda: ops.HashJoin(
            ops.Materialized(list(self.LEFT)),
            ops.Materialized(list(self.RIGHT)),
            [col(0)], [col(0)], kind="left", right_width=2,
        ))
        assert len(reference) == 7  # 4 matches + 3 padded (None/NaN/2)
        for got in results:
            assert _canon(got) == _canon(reference)


class TestEmptyInputs:
    def test_empty_child_through_every_operator(self):
        empty = lambda: ops.Materialized([])
        makers = [
            lambda: ops.Filter(empty(), lambda row, env: True),
            lambda: ops.Project(empty(), [col(0)]),
            lambda: ops.Sort(empty(), [col(0)], [False]),
            lambda: ops.Distinct(empty()),
            lambda: ops.Aggregate(empty(), [col(0)], [("count", None, False)]),
            lambda: ops.HashJoin(empty(), empty(), [col(0)], [col(0)]),
            lambda: ops.MergeJoin(empty(), empty(), col(0), col(0)),
            lambda: ops.Union(empty(), empty()),
            lambda: ops.Union(empty(), empty(), all_rows=True),
        ]
        for make_op in makers:
            reference, results = _variants(make_op)
            assert reference == []
            for got in results:
                assert got == reference

    def test_global_aggregate_over_empty_input_yields_one_row(self):
        reference, results = _variants(lambda: ops.Aggregate(
            ops.Materialized([]), [], [("count", None, False)], global_agg=True,
        ))
        assert reference == [(0,)]
        for got in results:
            assert got == reference

    def test_empty_history_partition(self, tiny_workload):
        # a freshly created table: current and history both empty
        system = make_system("A")
        system.db.execute(
            "CREATE TABLE empty_t (k integer NOT NULL, v integer,"
            " sb timestamp, se timestamp,"
            " PRIMARY KEY (k), PERIOD FOR system_time (sb, se))"
        )
        for sql in (
            "SELECT * FROM empty_t",
            "SELECT * FROM empty_t FOR SYSTEM_TIME ALL",
            "SELECT count(*) FROM empty_t FOR SYSTEM_TIME ALL",
        ):
            with execution_config(size=1, vectorized=False):
                reference = system.execute(sql).rows
            for size in SIZES:
                with execution_config(size=size, vectorized=True):
                    assert system.execute(sql).rows == reference


class TestSortStability:
    def test_duplicate_keys_keep_input_order_across_sizes(self):
        rows = [(i % 3, i) for i in range(50)]
        reference, results = _variants(lambda: ops.Sort(
            ops.Materialized(list(rows)),
            [col(0)], [False],
            batch_keys=[lambda batch, env: batch.column(0)],
        ))
        assert reference == sorted(rows, key=lambda r: r[0])  # stable
        for got in results:
            assert got == reference
