"""Machine-readable bench artifacts (repro.bench.artifact, schema v2)."""

import json
import math
from types import SimpleNamespace

from repro.bench.artifact import (
    SCHEMA,
    build_artifact,
    measurement_record,
    write_artifact,
)
from repro.bench.service import Measurement


def _measurement(times, **kwargs):
    m = Measurement(qid=kwargs.pop("qid", "T1"),
                    system=kwargs.pop("system", "A"), **kwargs)
    m.times = times
    return m


def _result(measurements, name="fig02", series=None, extra=None):
    return SimpleNamespace(
        name=name, text="(human tables)", measurements=measurements,
        series=series or {}, extra=extra or {},
    )


class TestMeasurementRecord:
    def test_basic_fields(self):
        m = _measurement([0.2, 0.1, 0.3], setting="with index")
        m.rows = 7
        m.metrics = {"storage.current_scans": 3}
        record = measurement_record(m)
        assert record["qid"] == "T1"
        assert record["system"] == "A"
        assert record["setting"] == "with index"
        assert record["runs"] == 3
        assert record["median_s"] == 0.2
        assert record["rows"] == 7
        assert record["metrics"] == {"storage.current_scans": 3}

    def test_empty_measurement_serialises_to_nulls(self):
        record = measurement_record(_measurement([]))
        # median/mean/best are inf on empty cells; percentile raises —
        # the artifact maps all of them to null, never to "Infinity"
        assert record["median_s"] is None
        assert record["mean_s"] is None
        assert record["p95_s"] is None
        json.dumps(record)  # strict JSON

    def test_diagnostics_become_codes(self):
        m = _measurement([0.1])
        m.diagnostics = [SimpleNamespace(code="TQ001", severity="info")]
        assert measurement_record(m)["diagnostics"] == ["TQ001"]

    def test_statement_telemetry_rows_serialise(self):
        m = _measurement([0.1])
        m.statements = [{
            "fingerprint": "abc123def456", "query": "select v from n",
            "calls": 3, "time_total_s": 0.3, "time_p95_s": float("inf"),
            "cache_hit_ratio": None, "peak_ws_bytes": 4096,
        }]
        record = measurement_record(m)
        (row,) = record["statements"]
        assert row["calls"] == 3
        assert row["time_p95_s"] is None  # non-finite -> null
        json.dumps(record)  # strict JSON

    def test_measurement_without_statements_attribute(self):
        # pre-v2 Measurement objects (or foreign duck types) lack the field
        bare = SimpleNamespace(
            qid="T1", system="A", setting="no index", times=[0.1],
            discarded=[], rows=0, timed_out=False, timeout_s=None,
            diagnostics=[], metrics={},
            median=0.1, mean=0.1, best=0.1,
            percentile=lambda pct: 0.1,
        )
        assert measurement_record(bare)["statements"] == []


class TestBuildArtifact:
    def _systems(self):
        return {
            "A": SimpleNamespace(
                architecture="in-place update",
                cache_stats=lambda: {"hits": 5, "misses": 2},
            ),
        }

    def test_shape(self):
        m = _measurement([0.1])
        artifact = build_artifact(
            [_result([m])], systems=self._systems(),
            config={"h": 0.001},
        )
        assert artifact["schema"] == SCHEMA
        assert artifact["config"] == {"h": 0.001}
        assert [e["name"] for e in artifact["experiments"]] == ["fig02"]
        assert artifact["systems"]["A"]["architecture"] == "in-place update"
        assert artifact["systems"]["A"]["cache"] == {"hits": 5, "misses": 2}

    def test_system_metrics_are_summed_deltas(self):
        a1 = _measurement([0.1])
        a1.metrics = {"storage.current_scans": 2}
        a2 = _measurement([0.1], qid="T2")
        a2.metrics = {"storage.current_scans": 3, "index.btree_probes": 1}
        b = _measurement([0.1], system="B")
        b.metrics = {"storage.current_scans": 99}
        artifact = build_artifact(
            [_result([a1, a2, b])], systems=self._systems()
        )
        assert artifact["systems"]["A"]["metrics"] == {
            "index.btree_probes": 1,
            "storage.current_scans": 5,  # B's counters not mixed in
        }

    def test_analyzer_tally(self):
        diag = SimpleNamespace(code="TQ001", severity="info")
        m1 = _measurement([0.1])
        m1.diagnostics = [diag]
        m2 = _measurement([0.1], system="B")
        m2.diagnostics = [diag]
        artifact = build_artifact([_result([m1, m2])])
        assert artifact["analyzer"] == {
            "TQ001": {"severity": "info", "count": 2}
        }

    def test_non_finite_series_values_become_null(self):
        result = _result([], series={"A": [(1, float("inf"))]})
        artifact = build_artifact([result])
        assert artifact["experiments"][0]["series"]["A"][0][1] is None
        json.dumps(artifact)

    def test_text_is_dropped(self):
        artifact = build_artifact([_result([_measurement([0.1])])])
        assert "text" not in artifact["experiments"][0]


class TestWriteArtifact:
    def test_file_path(self, tmp_path):
        target = tmp_path / "out.json"
        written = write_artifact(target, {"schema": SCHEMA})
        assert written == target
        assert json.loads(target.read_text())["schema"] == SCHEMA

    def test_directory_gets_canonical_name(self, tmp_path):
        written = write_artifact(tmp_path, {"schema": SCHEMA},
                                 experiment="fig02")
        assert written == tmp_path / "BENCH_fig02.json"
        assert written.exists()

    def test_round_trip_from_live_measurement(self, tmp_path):
        from repro.bench.service import BenchmarkService
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        service = BenchmarkService(repetitions=2, discard=1)
        m = service.measure_sql(db, "SELECT a FROM t", qid="probe")
        artifact = build_artifact([_result([m], name="probe")])
        written = write_artifact(tmp_path / "b.json", artifact)
        loaded = json.loads(written.read_text())
        (record,) = loaded["experiments"][0]["measurements"]
        assert record["qid"] == "probe"
        assert record["metrics"]["storage.current_scans"] == 2
        assert math.isfinite(record["median_s"])
