"""Artifact comparator: threshold policy, cell deltas, gate classification."""

import math

import pytest

from repro.bench.artifact import ArtifactError, load_artifact, write_artifact
from repro.bench.compare import (
    ArtifactDiff,
    STATUSES,
    ThresholdPolicy,
    artifact_cells,
    cell_key,
    diff_artifacts,
    diff_files,
    markdown_report,
)
from repro.bench.report import format_delta_table


def make_artifact(cells, analyzer=None, created=None):
    """A minimal repro-bench/v1 artifact from (qid, system, setting, fields)."""
    measurements = []
    for qid, system, setting, fields in cells:
        record = {
            "qid": qid,
            "system": system,
            "setting": setting,
            "median_s": fields.get("median_s"),
            "p95_s": fields.get("p95_s"),
            "timed_out": fields.get("timed_out", False),
            "metrics": fields.get("metrics", {}),
        }
        measurements.append(record)
    generator = {"tool": "repro bench"}
    if created is not None:
        generator["created_unix"] = created
    return {
        "schema": "repro-bench/v1",
        "generator": generator,
        "experiments": [{"name": "fig02", "measurements": measurements}],
        "analyzer": analyzer or {},
    }


class TestThresholdPolicy:
    def test_classification_bands(self):
        policy = ThresholdPolicy(regress_ratio=1.15, min_delta_s=0.0005)
        assert policy.classify(0.100, 0.120) == "regressed"  # 1.20x
        assert policy.classify(0.100, 0.110) == "unchanged"  # 1.10x
        assert policy.classify(0.100, 0.080) == "improved"   # 0.80x
        assert policy.classify(None, 0.1) == "added"
        assert policy.classify(0.1, None) == "removed"
        assert policy.classify(None, None) == "unchanged"

    def test_absolute_floor_beats_ratio(self):
        # 3x ratio but only 0.2 ms of movement: below the noise floor.
        policy = ThresholdPolicy(regress_ratio=1.15, min_delta_s=0.0005)
        assert policy.classify(0.0001, 0.0003) == "unchanged"

    def test_improvement_bound_is_reciprocal(self):
        policy = ThresholdPolicy(regress_ratio=2.0)
        assert policy.improvement_bound == pytest.approx(0.5)
        assert policy.classify(0.100, 0.051) == "unchanged"
        assert policy.classify(0.100, 0.050) == "improved"

    def test_invalid_ratios_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(regress_ratio=1.0)
        with pytest.raises(ValueError):
            ThresholdPolicy(improve_ratio=1.0)


class TestDiffArtifacts:
    def test_per_cell_statuses(self):
        base = make_artifact([
            ("T1", "A", "no index", {"median_s": 0.100}),
            ("T2", "A", "no index", {"median_s": 0.100}),
            ("T3", "A", "no index", {"median_s": 0.100}),
            ("T4", "A", "no index", {"median_s": 0.100}),
        ])
        new = make_artifact([
            ("T1", "A", "no index", {"median_s": 0.130}),   # regressed
            ("T2", "A", "no index", {"median_s": 0.070}),   # improved
            ("T3", "A", "no index", {"median_s": 0.101}),   # unchanged
            ("T5", "A", "no index", {"median_s": 0.100}),   # added (T4 removed)
        ])
        diff = diff_artifacts(base, new)
        by_qid = {c.qid: c.status for c in diff.cells}
        assert by_qid == {
            "T1": "regressed",
            "T2": "improved",
            "T3": "unchanged",
            "T4": "removed",
            "T5": "added",
        }
        assert diff.counts() == {
            "regressed": 1, "improved": 1, "unchanged": 1, "added": 1, "removed": 1,
        }
        assert set(diff.counts()) == set(STATUSES)
        (regression,) = diff.regressions
        assert regression.ratio == pytest.approx(1.30)
        assert regression.delta_s == pytest.approx(0.030)
        assert regression.key == cell_key("fig02", "T1", "A", "no index")

    def test_new_timeout_dominates_numbers(self):
        base = make_artifact([("T1", "A", "s", {"median_s": 0.100})])
        new = make_artifact(
            [("T1", "A", "s", {"median_s": 0.001, "timed_out": True})]
        )
        (cell,) = diff_artifacts(base, new).cells
        assert cell.status == "regressed"

    def test_resolved_timeout_is_an_improvement(self):
        base = make_artifact(
            [("T1", "A", "s", {"median_s": 5.0, "timed_out": True})]
        )
        new = make_artifact([("T1", "A", "s", {"median_s": 9.0})])
        diff = diff_artifacts(base, new)
        (cell,) = diff.cells
        assert cell.status == "improved"
        # timed-out cells stay out of the geometric means
        assert "A" not in diff.system_gm

    def test_system_geometric_means(self):
        base = make_artifact([
            ("T1", "A", "s", {"median_s": 0.100}),
            ("T2", "A", "s", {"median_s": 0.100}),
            ("T1", "B", "s", {"median_s": 0.100}),
        ])
        new = make_artifact([
            ("T1", "A", "s", {"median_s": 0.200}),
            ("T2", "A", "s", {"median_s": 0.050}),
            ("T1", "B", "s", {"median_s": 0.300}),
        ])
        diff = diff_artifacts(base, new)
        assert diff.system_gm["A"] == pytest.approx(1.0)  # gm(2.0, 0.5)
        assert diff.system_gm["B"] == pytest.approx(3.0)

    def test_metric_count_regressions(self):
        base = make_artifact(
            [("T1", "A", "s", {"median_s": 0.1,
                               "metrics": {"storage.history_rows_scanned": 100}})]
        )
        new = make_artifact(
            [("T1", "A", "s", {"median_s": 0.1,
                               "metrics": {"storage.history_rows_scanned": 400}})]
        )
        (cell,) = diff_artifacts(base, new).cells
        assert cell.metric_regressions == [
            ("storage.history_rows_scanned", 100, 400)
        ]

    def test_metric_floor_suppresses_small_counters(self):
        base = make_artifact(
            [("T1", "A", "s", {"median_s": 0.1, "metrics": {"idx.probes": 2}})]
        )
        new = make_artifact(
            [("T1", "A", "s", {"median_s": 0.1, "metrics": {"idx.probes": 10}})]
        )
        (cell,) = diff_artifacts(base, new).cells
        assert cell.metric_regressions == []  # 5x but delta < min_metric_delta

    def test_analyzer_tally_drift(self):
        base = make_artifact([], analyzer={"TQ001": {"severity": "info", "count": 4}})
        new = make_artifact([], analyzer={
            "TQ001": {"severity": "info", "count": 4},
            "TQ007": {"severity": "warning", "count": 2},
        })
        diff = diff_artifacts(base, new)
        assert diff.analyzer_drift == {"TQ007": (0, 2)}

    def test_summary_names_both_labels(self):
        diff = diff_artifacts(
            make_artifact([]), make_artifact([]),
            base_label="old.json", new_label="new.json",
        )
        assert "old.json -> new.json" in diff.summary()


class TestFilesAndReports:
    def test_diff_files_round_trip(self, tmp_path):
        base = make_artifact([("T1", "A", "s", {"median_s": 0.100})])
        new = make_artifact([("T1", "A", "s", {"median_s": 0.200})])
        base_path = write_artifact(tmp_path / "base.json", base)
        new_path = write_artifact(tmp_path / "new.json", new)
        diff = diff_files(base_path, new_path)
        assert diff.base_label == "base.json"
        assert (cell.status for cell in diff.cells)
        assert diff.cells[0].status == "regressed"

    def test_load_rejects_non_artifacts(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something-else"}')
        with pytest.raises(ArtifactError):
            load_artifact(bogus)
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ArtifactError):
            load_artifact(broken)

    def test_load_accepts_both_schema_versions(self, tmp_path):
        # v1 artifacts (pre-statement-telemetry) must keep loading
        for schema in ("repro-bench/v1", "repro-bench/v2"):
            path = tmp_path / f"{schema.split('/')[-1]}.json"
            path.write_text(
                f'{{"schema": "{schema}", "experiments": []}}'
            )
            assert load_artifact(path)["schema"] == schema

    def test_markdown_report_shape(self):
        base = make_artifact([("T1", "A", "s", {"median_s": 0.100})])
        new = make_artifact([("T1", "A", "s", {"median_s": 0.200,
                                               "metrics": {"c": 100}})])
        report = markdown_report(diff_artifacts(base, new))
        assert "| `fig02|T1|A|s` |" in report
        assert "2.00×" in report
        assert "regressed" in report

    def test_format_delta_table(self):
        base = make_artifact([("T1", "A", "s", {"median_s": 0.100})])
        new = make_artifact([("T1", "A", "s", {"median_s": 0.200})])
        text = format_delta_table(diff_artifacts(base, new))
        assert "fig02|T1|A|s" in text
        assert "regressed" in text

    def test_artifact_cells_keeps_first_duplicate(self):
        artifact = make_artifact([
            ("T1", "A", "s", {"median_s": 0.1}),
            ("T1", "A", "s", {"median_s": 0.9}),
        ])
        cells = artifact_cells(artifact)
        assert cells[cell_key("fig02", "T1", "A", "s")]["median_s"] == 0.1

    def test_empty_diff_is_well_formed(self):
        diff = diff_artifacts(make_artifact([]), make_artifact([]))
        assert isinstance(diff, ArtifactDiff)
        assert diff.cells == []
        assert not diff.system_gm
        assert "no cells" in diff.summary()
        assert not any(math.isnan(v) for v in diff.system_gm.values())
