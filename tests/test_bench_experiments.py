"""Unit tests for the experiment harness (micro scale, fast)."""

import pytest

from repro.bench.experiments import (
    ExperimentResult,
    fig02_basic_time_travel,
    fig06_implicit_explicit,
    fig07_tpch,
    fig16_loading,
    generate_workload,
    prepare_systems,
    table1_scenario_mix,
    table2_operations,
)
from repro.bench.service import BenchmarkService


@pytest.fixture(scope="module")
def micro():
    workload = generate_workload(h=0.0004, m=0.00005)
    systems = prepare_systems(workload, "AB")
    service = BenchmarkService(repetitions=2, discard=1)
    return workload, systems, service


def test_generate_workload_scales(micro):
    workload, _systems, _service = micro
    assert len(workload.transactions) == 50
    assert workload.meta.initial_counts["customer"] == 60


def test_prepare_systems_loads_named_subset(micro):
    _workload, systems, _service = micro
    assert set(systems) == {"A", "B"}
    for system in systems.values():
        assert system.execute("SELECT count(*) FROM orders").scalar() > 0


def test_table_experiments_return_structure(micro):
    workload, _systems, _service = micro
    t1 = table1_scenario_mix(workload)
    assert isinstance(t1, ExperimentResult)
    assert abs(sum(t1.extra["mix"].values()) - 1.0) < 1e-9
    t2 = table2_operations(workload)
    assert {row["table"] for row in t2.extra["rows"]} >= {"orders", "lineitem"}


def test_fig02_measurement_grid(micro):
    workload, systems, service = micro
    result = fig02_basic_time_travel(systems, workload, service)
    # 5 queries x 2 systems
    assert len(result.measurements) == 10
    assert "Fig 2" in result.text
    qids = {m.qid for m in result.measurements}
    assert qids == {"T1.app", "T1.sys", "T2.app", "T2.sys", "T5.all"}


def test_fig06_counts_history_scans(micro):
    workload, systems, service = micro
    result = fig06_implicit_explicit(systems, workload, service)
    assert set(result.extra["history_scans"]) == {"A", "B"}
    assert all(v >= 1 for v in result.extra["history_scans"].values())


def test_fig07_sys_mode_structure(micro):
    workload, systems, service = micro
    result = fig07_tpch(systems, workload, service, mode="sys", numbers=[1, 6])
    assert set(result.series) == {"A", "B"}
    for per_query in result.series.values():
        assert set(per_query) == {1, 6}
        assert all(value > 0 for value in per_query.values())
    assert "gm" in result.text


def test_fig07_app_mode_includes_slice(micro):
    workload, systems, service = micro
    result = fig07_tpch(systems, workload, service, mode="app", numbers=[1, 6])
    assert result.extra["slice_ratios"] is not None
    assert "app_slice" in result.text


def test_fig16_structure(micro):
    workload, _systems, _service = micro
    result = fig16_loading(workload, names="A", include_bulk_d=True)
    assert "A" in result.extra["cells"]
    assert "D(bulk)" in result.extra["totals"]
    assert result.extra["cells"]["A"]["p97"] >= result.extra["cells"]["A"]["median"]
