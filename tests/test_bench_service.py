"""Benchmark service and report-formatting tests."""

import math
import time

import pytest

from repro.bench.report import (
    format_figure,
    format_latency_table,
    format_ratio_table,
    format_series,
    geometric_mean,
)
from repro.bench.service import BenchmarkService, Measurement


class TestMeasurement:
    def _measurement(self, times):
        m = Measurement(qid="q", system="A")
        m.times = times
        return m

    def test_statistics(self):
        m = self._measurement([0.3, 0.1, 0.2])
        assert m.median == 0.2
        assert abs(m.mean - 0.2) < 1e-9
        assert m.best == 0.1

    def test_percentile(self):
        m = self._measurement([float(i) for i in range(1, 101)])
        assert abs(m.percentile(97) - 97.03) < 0.01
        assert m.percentile(50) == m.median

    def test_percentile_linear_interpolation_pinned(self):
        # Linear interpolation between order statistics, rank = p/100*(n-1):
        # nearest-rank would return 3.0 and 4.0 for p50/p95 here.
        m = self._measurement([4.0, 1.0, 3.0, 2.0])
        assert m.percentile(50) == pytest.approx(2.5)
        assert m.percentile(95) == pytest.approx(3.85)
        assert m.percentile(99) == pytest.approx(3.97)

    def test_percentile_endpoints_and_singleton(self):
        m = self._measurement([4.0, 1.0, 3.0, 2.0])
        assert m.percentile(0) == 1.0
        assert m.percentile(100) == 4.0
        single = self._measurement([0.125])
        for pct in (0, 50, 95, 99, 100):
            assert single.percentile(pct) == 0.125

    def test_empty_is_infinite(self):
        m = self._measurement([])
        assert math.isinf(m.median)

    def test_percentile_of_empty_raises(self):
        m = self._measurement([])
        with pytest.raises(ValueError) as excinfo:
            m.percentile(95)
        # the message names the cell, not just "index out of range"
        assert "q/A" in str(excinfo.value)
        assert "no recorded samples" in str(excinfo.value)

    def test_label(self):
        m = self._measurement([0.001])
        assert "1.00 ms" in m.label()
        m.timed_out = True
        m.timeout_s = 5
        assert "TIMEOUT" in m.label()

    def test_label_includes_setting(self):
        m = Measurement(qid="q", system="A", setting="with index")
        m.times = [0.001]
        assert "[with index]" in m.label()
        m.timed_out = True
        m.timeout_s = 5
        assert "[with index]" in m.label()


class TestService:
    def test_discard_warmup(self):
        # disable the variance adaptation: nanosecond no-op timings are
        # noisy enough to trigger it spuriously
        service = BenchmarkService(
            repetitions=5, discard=2, fluctuation_threshold=float("inf")
        )
        calls = []
        measurement = service.measure_callable(lambda: calls.append(1))
        assert len(measurement.discarded) == 2
        assert len(measurement.times) == 3
        assert len(calls) == 5

    def test_discard_must_be_smaller(self):
        with pytest.raises(ValueError):
            BenchmarkService(repetitions=3, discard=3)

    def test_rows_counted(self):
        service = BenchmarkService(repetitions=2, discard=1)
        measurement = service.measure_callable(lambda: [1, 2, 3])
        assert measurement.rows == 3

    def test_fluctuation_adds_repetitions(self):
        # a bimodal callable triggers the adaptation path
        state = {"slow": False}

        def flaky():
            state["slow"] = not state["slow"]
            time.sleep(0.003 if state["slow"] else 0.0001)

        service = BenchmarkService(
            repetitions=3, discard=1, max_repetitions=8,
            fluctuation_threshold=0.2,
        )
        measurement = service.measure_callable(flaky)
        assert len(measurement.times) + len(measurement.discarded) > 3

    def test_timeout_stops_early(self):
        service = BenchmarkService(repetitions=5, discard=1, timeout_s=0.001)
        measurement = service.measure_callable(lambda: time.sleep(0.01))
        assert measurement.timed_out
        assert len(measurement.times) + len(measurement.discarded) <= 2

    def test_measure_sql(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        service = BenchmarkService(repetitions=2, discard=1)
        measurement = service.measure_sql(db, "SELECT a FROM t", qid="probe")
        assert measurement.rows == 1
        assert measurement.qid == "probe"

    def test_measure_sql_attaches_diagnostics(self):
        from repro.systems import make_system

        system = make_system("A")
        system.db.execute(
            "CREATE TABLE t (a integer, sb timestamp, se timestamp,"
            " PERIOD FOR system_time (sb, se))"
        )
        system.db.execute("INSERT INTO t (a) VALUES (1)")
        service = BenchmarkService(repetitions=2, discard=1)
        measurement = service.measure_sql(
            system, "SELECT a FROM t FOR SYSTEM_TIME ALL", qid="probe"
        )
        assert [d.code for d in measurement.diagnostics] == ["TQ001"]

    def test_measure_sql_captures_metric_deltas(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        service = BenchmarkService(repetitions=2, discard=1)
        measurement = service.measure_sql(db, "SELECT a FROM t", qid="probe")
        # two repetitions scanned the current partition twice
        assert measurement.metrics.get("storage.current_scans") == 2
        # deltas are per-cell: a second measurement starts from zero
        again = service.measure_sql(db, "SELECT a FROM t", qid="probe")
        assert again.metrics.get("storage.current_scans") == 2

    def test_measure_sql_captures_statement_telemetry(self):
        from repro.systems import make_system

        system = make_system("A")
        system.db.execute(
            "CREATE TABLE t (a integer, sb timestamp, se timestamp,"
            " PERIOD FOR system_time (sb, se))"
        )
        system.db.execute("INSERT INTO t (a) VALUES (1)")
        system.enable_telemetry()
        # disable fluctuation adaptation: the call count must be exact
        service = BenchmarkService(
            repetitions=3, discard=1, fluctuation_threshold=float("inf")
        )
        sql = "SELECT a FROM t FOR SYSTEM_TIME ALL"
        measurement = service.measure_sql(system, sql, qid="probe")
        (row,) = measurement.statements
        # per-cell delta: exactly this cell's repetitions, incl. warm-up
        assert row["calls"] == 3
        assert row["cache_misses"] == 1 and row["cache_hits"] == 2
        assert row["rows_scanned"] >= 3
        # the analyzer finding (TQ001) is attributed to the statement
        assert row["diagnostics"] == len(measurement.diagnostics) == 1
        # a second cell starts from a fresh store
        again = service.measure_sql(system, sql, qid="probe")
        assert again.statements[0]["calls"] == 3

    def test_measure_sql_without_telemetry_store(self):
        from repro.engine import Database

        db = Database()  # telemetry disabled by default
        db.execute("CREATE TABLE t (a integer)")
        service = BenchmarkService(repetitions=2, discard=1)
        measurement = service.measure_sql(db, "SELECT a FROM t")
        assert measurement.statements == []

    def test_measure_sql_without_lint_surface(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (a integer)")

        # a target without a .lint attribute: diagnostics stay empty

        class Bare:
            def execute(self, sql, params=None, timeout_s=None):
                return db.execute(sql, params)

        service = BenchmarkService(repetitions=2, discard=1)
        measurement = service.measure_sql(Bare(), "SELECT a FROM t")
        assert measurement.diagnostics == []


class TestReports:
    def test_geometric_mean(self):
        assert abs(geometric_mean([1, 100]) - 10.0) < 1e-9
        assert math.isnan(geometric_mean([]))
        assert abs(geometric_mean([2.0]) - 2.0) < 1e-9

    def test_format_figure(self):
        m = Measurement(qid="T1", system="A")
        m.times = [0.002]
        text = format_figure("My Figure", [m])
        assert "My Figure" in text
        assert "T1" in text and "2.00 ms" in text and "*" in text

    def test_format_figure_timeout(self):
        m = Measurement(qid="T1", system="A", timeout_s=5.0)
        m.timed_out = True
        text = format_figure("F", [m])
        assert "TIMEOUT" in text

    def test_format_ratio_table(self):
        text = format_ratio_table(
            "Fig", {"A": {1: 2.0, 2: 8.0}, "B": {1: 3.0, 2: 27.0}},
            {"A": [], "B": []},
        )
        assert "gm" in text
        assert "4.00" in text  # gm of 2 and 8
        assert "9.00" in text  # gm of 3 and 27

    def test_format_ratio_table_marks_timeouts(self):
        text = format_ratio_table("Fig", {"A": {1: 2.0}}, {"A": [2]})
        assert "timeout" in text

    def test_format_series(self):
        text = format_series(
            "S", "m", {"A": [(1, 0.001), (2, 0.002)], "B": [(1, 0.003)]}
        )
        assert "1.00ms" in text and "3.00ms" in text

    def test_format_latency_table(self):
        text = format_latency_table(
            "L", {"A": {"median": 0.001, "p97": 0.005}}
        )
        assert "median" in text and "p97" in text and "5.000ms" in text

    def test_format_lint_summary_tallies_by_code(self):
        from types import SimpleNamespace

        from repro.bench.report import format_lint_summary

        diag = SimpleNamespace(code="TQ001", severity="info")
        a = Measurement(qid="T1", system="A")
        a.diagnostics = [diag]
        b = Measurement(qid="T2", system="B")
        b.diagnostics = [diag]
        text = format_lint_summary("Findings", [a, b])
        assert "TQ001" in text
        assert "A,B" in text
        assert " 2" in text  # two distinct qids

    def test_format_lint_summary_empty(self):
        from repro.bench.report import format_lint_summary

        assert format_lint_summary("Findings", [Measurement(qid="q", system="A")]) == ""

    def test_format_cache_stats(self):
        from repro.bench.report import format_cache_stats

        text = format_cache_stats("Plan cache", {
            "A": {"size": 3, "hits": 9, "misses": 1, "invalidations": 0},
        })
        assert "90.0%" in text
        assert "hit rate" in text

    def test_format_cache_stats_no_lookups(self):
        from repro.bench.report import format_cache_stats

        text = format_cache_stats("Plan cache", {"A": {}})
        assert "0.0%" in text
