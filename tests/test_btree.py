"""B+-Tree unit and property tests (the workhorse index of every system)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.index.btree import BPlusTree


class TestBasics:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(3, "b")
        tree.insert(5, "c")
        assert sorted(tree.search(5)) == ["a", "c"]
        assert tree.search(3) == ["b"]
        assert tree.search(99) == []

    def test_len_counts_pairs(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(i % 3, i)
        assert len(tree) == 10

    def test_contains(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "x")
        assert 1 in tree
        assert 2 not in tree

    def test_remove(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "x")
        tree.insert(1, "y")
        assert tree.remove(1, "x")
        assert tree.search(1) == ["y"]
        assert not tree.remove(1, "x")
        assert tree.remove(1, "y")
        assert 1 not in tree

    def test_min_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_splits_grow_height(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.insert(i, i)
        assert tree.height() >= 3
        assert [k for k, _v in tree.items()] == sorted(range(200))

    def test_min_max_key(self):
        tree = BPlusTree(order=4)
        assert tree.min_key() is None and tree.max_key() is None
        for i in (5, 1, 9):
            tree.insert(i, i)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_composite_tuple_keys(self):
        tree = BPlusTree(order=4)
        tree.insert((1, 10), "a")
        tree.insert((1, 20), "b")
        tree.insert((2, 5), "c")
        keys = [k for k, _ in tree.range_scan((1, 0), (1, 99))]
        assert keys == [(1, 10), (1, 20)]


class TestRangeScan:
    def _tree(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):
            tree.insert(i, i)
        return tree

    def test_inclusive_bounds(self):
        tree = self._tree()
        keys = [k for k, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self):
        tree = self._tree()
        keys = [k for k, _ in tree.range_scan(10, 20, False, False)]
        assert keys == [12, 14, 16, 18]

    def test_unbounded_low(self):
        tree = self._tree()
        keys = [k for k, _ in tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_unbounded_high(self):
        tree = self._tree()
        keys = [k for k, _ in tree.range_scan(94, None)]
        assert keys == [94, 96, 98]

    def test_full_scan_sorted(self):
        tree = self._tree()
        keys = [k for k, _ in tree.range_scan()]
        assert keys == sorted(keys)

    def test_empty_range(self):
        tree = self._tree()
        assert list(tree.range_scan(11, 11)) == []

    def test_keys_deduplicated(self):
        tree = BPlusTree(order=4)
        for i in (1, 1, 2, 2, 3):
            tree.insert(i, i)
        assert list(tree.keys()) == [1, 2, 3]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(-1000, 1000), st.integers(0, 50)), max_size=300))
def test_property_matches_model_multimap(pairs):
    """The tree behaves exactly like a sorted multimap."""
    tree = BPlusTree(order=4)
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model.setdefault(key, []).append(value)
    assert len(tree) == sum(len(v) for v in model.values())
    for key in list(model)[:20]:
        assert sorted(tree.search(key)) == sorted(model[key])
    scanned = [k for k, _v in tree.items()]
    assert scanned == sorted(scanned)
    expected = sorted(
        (k, v) for k, values in model.items() for v in values
    )
    assert sorted(tree.items()) == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=200),
    st.integers(0, 200),
    st.integers(0, 200),
)
def test_property_range_scan_matches_filter(keys, low, high):
    low, high = min(low, high), max(low, high)
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    got = [k for k, _ in tree.range_scan(low, high)]
    expected = sorted(k for k in keys if low <= k <= high)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5)), max_size=120))
def test_property_remove_is_exact(pairs):
    tree = BPlusTree(order=4)
    for key, value in pairs:
        tree.insert(key, value)
    # remove every other inserted pair once
    for index, (key, value) in enumerate(pairs):
        if index % 2 == 0:
            assert tree.remove(key, value)
    remaining = sorted(
        (k, v) for i, (k, v) in enumerate(pairs) if i % 2 == 1
    )
    assert sorted(tree.items()) == remaining
