"""Catalog unit tests: schemas, periods, indexes."""

import pytest

from repro.engine.catalog import Catalog, Column, IndexDef, PeriodDef, TableSchema
from repro.engine.errors import CatalogError
from repro.engine.types import SqlType


def _schema():
    return TableSchema(
        "t",
        [
            Column("id", SqlType.INTEGER, nullable=False),
            Column("v", SqlType.VARCHAR),
            Column("ab", SqlType.DATE),
            Column("ae", SqlType.DATE),
            Column("sb", SqlType.TIMESTAMP),
            Column("se", SqlType.TIMESTAMP),
        ],
        primary_key=("id",),
        periods=[
            PeriodDef("app", "ab", "ae"),
            PeriodDef("system_time", "sb", "se", is_system=True),
        ],
    )


class TestTableSchema:
    def test_positions(self):
        schema = _schema()
        assert schema.position("id") == 0
        assert schema.position("se") == 5
        with pytest.raises(CatalogError):
            schema.position("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", SqlType.INTEGER), Column("a", SqlType.INTEGER)])

    def test_pk_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", SqlType.INTEGER)], primary_key=("b",))

    def test_period_columns_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "t",
                [Column("a", SqlType.INTEGER)],
                periods=[PeriodDef("p", "a", "zz")],
            )

    def test_system_and_application_periods(self):
        schema = _schema()
        assert schema.system_period.name == "system_time"
        assert [p.name for p in schema.application_periods] == ["app"]
        assert schema.period("APP").begin_column == "ab"

    def test_key_of(self):
        schema = _schema()
        assert schema.key_of([7, "x", 0, 1, 0, 1]) == (7,)

    def test_without_periods_strips_columns(self):
        plain = _schema().without_periods()
        assert plain.column_names() == ["id", "v"]
        assert not plain.is_temporal
        assert plain.primary_key == ("id",)

    def test_names_lowercased(self):
        schema = TableSchema("MiXeD", [Column("a", SqlType.INTEGER)])
        assert schema.name == "mixed"


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_table(_schema())
        assert catalog.has_table("T")
        assert catalog.table("t").name == "t"
        with pytest.raises(CatalogError):
            catalog.add_table(_schema())

    def test_drop_table_removes_indexes(self):
        catalog = Catalog()
        catalog.add_table(_schema())
        catalog.add_index(IndexDef("i1", "t", ("v",)))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        assert catalog.indexes() == []

    def test_index_validation(self):
        catalog = Catalog()
        catalog.add_table(_schema())
        with pytest.raises(CatalogError):
            catalog.add_index(IndexDef("bad", "t", ("nope",)))
        with pytest.raises(CatalogError):
            IndexDef("bad2", "t", ("v",), kind="zigzag")
        with pytest.raises(CatalogError):
            IndexDef("bad3", "t", ("v",), kind="rtree")  # needs 2 columns

    def test_indexes_on(self):
        catalog = Catalog()
        catalog.add_table(_schema())
        catalog.add_index(IndexDef("i1", "t", ("v",)))
        catalog.add_index(IndexDef("i2", "t", ("ab",), partition="history"))
        assert {d.name for d in catalog.indexes_on("t")} == {"i1", "i2"}
        catalog.drop_index("i1")
        assert {d.name for d in catalog.indexes_on("t")} == {"i2"}
        with pytest.raises(CatalogError):
            catalog.drop_index("i1")
