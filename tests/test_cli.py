"""CLI tests (python -m repro)."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_systems_command(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    for name in ("System A", "System B", "System C", "System D", "System E"):
        assert name in out


def test_generate_and_inspect(tmp_path, capsys):
    archive = tmp_path / "a.jsonl"
    assert main(["generate", "--h", "0.0003", "--m", "0.00002",
                 "--out", str(archive)]) == 0
    assert archive.exists()
    assert main(["inspect", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "scenario_count: 20" in out
    assert "initial rows:" in out


def test_query_command(capsys):
    code = main([
        "query", "--system", "D", "--h", "0.0003", "--m", "0.00002",
        "SELECT count(*) FROM orders",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 rows" in out


def test_query_explain(capsys):
    code = main([
        "query", "--explain", "--h", "0.0003", "--m", "0.00002",
        "SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF 1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Access(orders" in out


def test_bench_single_experiment(tmp_path, capsys):
    code = main([
        "bench", "table2", "--h", "0.0003", "--m", "0.00005",
        "--out", str(tmp_path),
    ])
    assert code == 0
    assert (tmp_path / "table2.txt").exists()
    assert "lineitem" in capsys.readouterr().out


def test_verify_command(capsys):
    code = main(["verify", "--system", "B", "--h", "0.0003", "--m", "0.00005"])
    assert code == 0
    assert "CONSISTENT" in capsys.readouterr().out


def test_verify_bulk_path(capsys):
    code = main(["verify", "--system", "D", "--bulk",
                 "--h", "0.0003", "--m", "0.00005"])
    assert code == 0


def test_lint_single_statement(capsys):
    code = main([
        "lint", "--system", "A",
        "SELECT * FROM lineitem FOR SYSTEM_TIME ALL",
    ])
    assert code == 0  # info findings never fail the command
    out = capsys.readouterr().out
    assert "TQ001" in out
    assert "hint:" in out
    assert "system A" in out


def test_lint_error_severity_sets_exit_code(capsys):
    code = main([
        "lint", "--system", "A",
        "SELECT l_orderkey FROM lineitem FOR SYSTEM_TIME FROM 5 TO 1",
    ])
    assert code == 1
    assert "error[TQ004]" in capsys.readouterr().out


def test_lint_workload_sweep_is_clean(capsys):
    code = main(["lint", "--system", "D", "--workload"])
    assert code == 0
    out = capsys.readouterr().out
    assert "statements," in out
    assert "error[" not in out
    assert "warning[" not in out


def test_lint_requires_sql_or_workload(capsys):
    code = main(["lint"])
    assert code == 2


def test_cache_stats_command(capsys):
    code = main(["cache-stats", "--system", "A",
                 "--h", "0.0003", "--m", "0.00005", "--runs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hit rate" in out
    assert "Plan cache" in out


def test_trace_command(capsys):
    code = main(["trace", "--system", "A", "--h", "0.0003", "--m", "0.00005",
                 "SELECT count(*) FROM orders"])
    assert code == 0
    out = capsys.readouterr().out
    assert "query [sql=SELECT count(*) FROM orders" in out
    for phase in ("parse", "plan.physical", "execute", "operator"):
        assert phase in out
    assert "ms measured)" in out


def test_trace_command_jsonl(tmp_path, capsys):
    import json

    spans = tmp_path / "spans.jsonl"
    code = main(["trace", "--h", "0.0003", "--m", "0.00005",
                 "--jsonl", str(spans),
                 "SELECT count(*) FROM orders"])
    assert code == 0
    records = [json.loads(line) for line in spans.read_text().splitlines()]
    assert any(r["name"] == "query" for r in records)
    assert all(r["duration_s"] is not None for r in records)


def test_metrics_command(capsys):
    code = main(["metrics", "--system", "A",
                 "--h", "0.0003", "--m", "0.00005", "--runs", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Engine metrics" in out
    assert "storage.current_scans" in out
    assert "query.execute_s" in out  # histogram summary line


def test_health_command(tmp_path, capsys):
    import json

    target = tmp_path / "health.json"
    code = main(["health", "--systems", "AD",
                 "--h", "0.0003", "--m", "0.00005",
                 "--json", str(target)])
    assert code == 0
    out = capsys.readouterr().out
    assert "# Temporal health report" in out
    assert "## System A" in out and "## System D" in out
    assert "partition scans:" in out
    assert "hottest partitions" in out
    report = json.loads(target.read_text())
    assert report["schema"] == "repro-health/v1"
    assert set(report["systems"]) == {"A", "D"}
    split = report["systems"]["A"]["scan_split"]
    assert split["current"] + split["history"] > 0
    assert report["systems"]["A"]["hottest_partitions"]


def test_bench_json_artifact(tmp_path, capsys):
    import json

    target = tmp_path / "artifact.json"
    code = main(["bench", "table2", "--h", "0.0003", "--m", "0.00005",
                 "--json", str(target)])
    assert code == 0
    assert "wrote artifact" in capsys.readouterr().out
    artifact = json.loads(target.read_text())
    assert artifact["schema"] == "repro-bench/v2"
    assert artifact["config"]["experiments"] == ["table2"]
    assert "created_unix" in artifact["generator"]
    assert [e["name"] for e in artifact["experiments"]] == ["table2"]


def _tiny_artifact(path, median=0.1, created=None):
    import json

    generator = {"tool": "repro bench"}
    if created is not None:
        generator["created_unix"] = created
    path.write_text(json.dumps({
        "schema": "repro-bench/v1",
        "generator": generator,
        "experiments": [{"name": "fig02", "measurements": [{
            "qid": "T1", "system": "A", "setting": "no index",
            "median_s": median, "timed_out": False, "metrics": {},
        }]}],
        "analyzer": {},
    }))
    return path


def test_bench_diff_reports_and_gates(tmp_path, capsys):
    base = _tiny_artifact(tmp_path / "base.json", median=0.100)
    new = _tiny_artifact(tmp_path / "new.json", median=0.200)
    report = tmp_path / "delta.md"
    code = main(["bench-diff", str(base), str(new), "--report", str(report)])
    assert code == 0  # informational without --gate
    out = capsys.readouterr().out
    assert "regressed" in out
    assert "2.00x" in out
    assert report.exists()
    assert "2.00×" in report.read_text()

    code = main(["bench-diff", str(base), str(new), "--gate"])
    assert code == 1
    assert "GATE FAILED" in capsys.readouterr().err

    # a generous threshold lets the same pair through
    code = main(["bench-diff", str(base), str(new), "--gate", "--threshold", "3.0"])
    assert code == 0


def test_bench_diff_rejects_non_artifact(tmp_path, capsys):
    base = _tiny_artifact(tmp_path / "base.json")
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    code = main(["bench-diff", str(base), str(bogus)])
    assert code == 2
    assert "artifact" in capsys.readouterr().err.lower()


def test_bench_compare_to_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main(["bench", "fig02", "--h", "0.0003", "--m", "0.00005",
                 "--json", str(baseline)])
    assert code == 0
    capsys.readouterr()
    code = main(["bench", "fig02", "--h", "0.0003", "--m", "0.00005",
                 "--compare-to", str(baseline), "--threshold", "100.0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Bench delta" in out
    assert "geometric-mean ratio" in out


def test_trend_command(tmp_path, capsys):
    import json

    _tiny_artifact(tmp_path / "run1.json", median=0.1, created=1000)
    _tiny_artifact(tmp_path / "run2.json", median=0.2, created=2000)
    code = main(["trend", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Perf trajectory (2 runs)" in out
    trend = json.loads((tmp_path / "TREND.json").read_text())
    assert trend["schema"] == "repro-trend/v1"
    assert (tmp_path / "TREND.md").exists()


def test_trend_empty_directory_fails(tmp_path, capsys):
    code = main(["trend", str(tmp_path)])
    assert code == 2
    assert "artifact" in capsys.readouterr().err.lower()


def test_flamegraph_command(tmp_path, capsys):
    import xml.etree.ElementTree as ET

    svg = tmp_path / "fg.svg"
    folded = tmp_path / "fg.txt"
    code = main(["flamegraph", "--system", "A", "--svg", str(svg),
                 "--folded", str(folded), "SELECT 1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Operator attribution" in out
    ET.parse(svg)  # well-formed SVG
    lines = folded.read_text().splitlines()
    assert any(line.startswith("query") for line in lines)
    stack, value = lines[0].rsplit(" ", 1)
    assert value.isdigit()


def test_flamegraph_from_jsonl(tmp_path, capsys):
    import json

    source = tmp_path / "spans.jsonl"
    records = [
        {"span_id": 2, "parent_id": 1, "name": "execute", "duration_s": 0.001},
        {"span_id": 1, "parent_id": None, "name": "query", "duration_s": 0.002},
    ]
    source.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    code = main(["flamegraph", "--jsonl", str(source)])
    assert code == 0
    assert "query;execute" in capsys.readouterr().out
