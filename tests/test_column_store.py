"""Delta/main column store unit tests (System C architecture)."""

from repro.engine.storage.column_store import ColumnStore


def test_append_and_fetch_from_delta():
    store = ColumnStore(3, merge_threshold=100)
    rid = store.append([1, "x", 2.5])
    assert store.fetch(rid) == [1, "x", 2.5]
    assert store.delta_size == 1
    assert store.main_size == 0


def test_merge_moves_delta_to_main():
    store = ColumnStore(2, merge_threshold=100)
    rids = [store.append([i, str(i)]) for i in range(5)]
    store.merge()
    assert store.delta_size == 0
    assert store.main_size == 5
    for rid in rids:
        assert store.fetch(rid) == [rid, str(rid)]
    assert store.merge_count == 1


def test_automatic_merge_at_threshold():
    store = ColumnStore(1, merge_threshold=4)
    for i in range(4):
        store.append([i])
    assert store.main_size == 4
    assert store.delta_size == 0


def test_rids_stable_across_merge():
    store = ColumnStore(1, merge_threshold=3)
    rids = [store.append([i]) for i in range(7)]
    assert rids == list(range(7))
    for rid in rids:
        assert store.fetch(rid) == [rid]


def test_delete_in_delta_and_main():
    store = ColumnStore(1, merge_threshold=100)
    a = store.append([1])
    store.append([2])
    store.merge()
    c = store.append([3])
    assert store.delete(a)
    assert store.delete(c)
    assert not store.delete(a)
    assert store.fetch(a) is None
    assert store.fetch(c) is None
    assert [row[0] for _rid, row in store.scan()] == [2]
    assert len(store) == 1


def test_deleted_delta_slot_survives_merge():
    store = ColumnStore(1, merge_threshold=100)
    a = store.append([1])
    b = store.append([2])
    store.delete(a)
    store.merge()
    assert store.fetch(a) is None
    assert store.fetch(b) == [2]


def test_update_in_place_both_sides():
    store = ColumnStore(2, merge_threshold=100)
    a = store.append([1, "a"])
    store.merge()
    b = store.append([2, "b"])
    store.update_in_place(a, [10, "aa"])
    store.update_in_place(b, [20, "bb"])
    assert store.fetch(a) == [10, "aa"]
    assert store.fetch(b) == [20, "bb"]


def test_scan_column():
    store = ColumnStore(2, merge_threshold=3)
    for i in range(6):
        store.append([i, i * 10])
    values = [v for _rid, v in store.scan_column(1)]
    assert values == [0, 10, 20, 30, 40, 50]


def test_dictionary_encoding_reuses_codes():
    store = ColumnStore(1, merge_threshold=2)
    for _ in range(6):
        store.append(["same"])
    # all six rows decode to the same value
    assert [row[0] for _rid, row in store.scan()] == ["same"] * 6
