"""Temporal consistency checker tests (paper §4)."""

import pytest

from repro.core.consistency import ConsistencyReport, check_system
from repro.core.loader import Loader
from repro.systems import make_system


@pytest.mark.parametrize("name", ["A", "B", "C", "D", "E"])
def test_loaded_systems_are_consistent(name, tiny_workload):
    system = make_system(name)
    Loader(system, tiny_workload).load()
    report = check_system(system, tiny_workload)
    assert report.ok, report.summary()
    assert report.checked_tables == 6
    assert report.checked_versions > 0


def test_bulk_loaded_d_is_consistent(tiny_workload):
    system = make_system("D")
    Loader(system, tiny_workload).bulk_load()
    report = check_system(system, tiny_workload)
    assert report.ok, report.summary()


def test_detects_bad_period():
    system = make_system("A")
    from repro.core.schema import create_benchmark_tables

    create_benchmark_tables(system.db, temporal=True)
    # inject a corrupt row straight into storage: inverted app period
    table = system.db.table("customer")
    row = [None] * len(table.schema.columns)
    row[table.schema.position("c_custkey")] = 1
    row[table.schema.position("c_visible_begin")] = 100
    row[table.schema.position("c_visible_end")] = 50  # inverted!
    table.insert_version(row, sys_begin=1)
    report = check_system(system)
    assert not report.ok
    assert any(v.rule == "P1" for v in report.violations)


def test_detects_overlapping_app_periods():
    system = make_system("A")
    from repro.core.schema import create_benchmark_tables

    create_benchmark_tables(system.db, temporal=True)
    table = system.db.table("customer")
    for begin, end in ((0, 100), (50, 150)):  # overlapping windows
        row = [None] * len(table.schema.columns)
        row[table.schema.position("c_custkey")] = 7
        row[table.schema.position("c_visible_begin")] = begin
        row[table.schema.position("c_visible_end")] = end
        table.insert_version(row, sys_begin=1)
    report = check_system(system)
    assert any(v.rule == "P2" for v in report.violations)


def test_summary_format():
    report = ConsistencyReport()
    assert "CONSISTENT" in report.summary()
    report.add("P1", "orders", "boom")
    text = report.summary()
    assert "1 violation" in text and "P1" in text
