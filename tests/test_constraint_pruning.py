"""The constraint-pruning rewrite must be semantics-preserving.

On/off equivalence oracle: every query result with the `constraint-pruning`
rewrite enabled must be byte-identical to the result with the rule removed
from the profile, across all five architecture archetypes on a generated
workload whose history comes from the nine update scenarios of the paper's
Table 1.  One query per scenario, each shaped so the rewrite has something
to do on the table that scenario mutates (a subsumed predicate, a clause
the predicates tighten, or a provably-empty constraint set), plus the
EmptyScan EXPLAIN surface.
"""

import dataclasses

import pytest

from repro.core.loader import Loader
from repro.core.scenarios import SCENARIOS
from repro.systems import make_system


def _disable_pruning(system):
    """Remove constraint-pruning from the profile before anything executes.

    The plan cache is keyed by SQL and invalidated only by catalog changes,
    so the profile swap must happen before the first query compiles.
    """
    profile = system.db.profile
    system.db.profile = dataclasses.replace(
        profile,
        rewrite_rules=tuple(
            rule for rule in profile.rewrite_rules
            if rule != "constraint-pruning"
        ),
    )


@pytest.fixture(scope="module")
def system_pairs(tiny_workload):
    """(pruning on, pruning off) per archetype, loaded identically."""
    pairs = {}
    for name in "ABCDE":
        pruned = make_system(name)
        assert "constraint-pruning" in pruned.db.profile.rewrite_rules
        Loader(pruned, tiny_workload).load()
        plain = make_system(name)
        _disable_pruning(plain)
        Loader(plain, tiny_workload).load()
        pairs[name] = (pruned, plain)
    return pairs


#: one query per Table 1 update scenario, against the table it mutates.
#: Every query carries a constraint shape the rewrite acts on and orders
#: or aggregates its output so comparison is deterministic.
SCENARIO_QUERIES = {
    # orders/lineitem inserts: redundant lower bound on the insert tick
    "new_order": (
        "SELECT count(*), sum(o_totalprice) FROM orders FOR SYSTEM_TIME ALL"
        " WHERE sys_begin >= 1 AND sys_begin >= 0"
    ),
    # deletions only exist in history: predicate inside the clause window
    "cancel_order": (
        "SELECT count(*) FROM orders FOR SYSTEM_TIME BETWEEN 0 AND 1000000"
        " WHERE sys_begin <= 1000000"
    ),
    # status updates create versions; duplicate upper bounds collapse
    "deliver_order": (
        "SELECT o_orderkey, o_orderstatus, sys_begin"
        " FROM orders FOR SYSTEM_TIME ALL"
        " WHERE sys_begin <= 100 AND sys_begin <= 1000000"
        " ORDER BY o_orderkey, sys_begin"
    ),
    # payments close the receivable application period
    "receive_payment": (
        "SELECT count(*) FROM orders"
        " WHERE o_receivable_begin >= DATE '1992-01-01'"
        " AND o_receivable_begin >= DATE '1990-01-01'"
    ),
    # stock updates version partsupp rows
    "update_stock": (
        "SELECT count(*), sum(ps_availqty) FROM partsupp FOR SYSTEM_TIME ALL"
        " WHERE sys_begin > 5 AND sys_begin > 4"
    ),
    # availability shifts move part's application period
    "delay_availability": (
        "SELECT count(*) FROM part"
        " FOR availability_time BETWEEN DATE '1992-01-01' AND DATE '2198-12-31'"
        " WHERE p_avail_begin <= DATE '2198-12-31'"
    ),
    # price changes version part; the clause literal gets tightened
    "change_price": (
        "SELECT count(*), sum(p_retailprice)"
        " FROM part FOR SYSTEM_TIME BETWEEN 0 AND 1000000"
        " WHERE sys_begin <= 50"
    ),
    # supplier updates: predicate equals the clause's begin bound
    "update_supplier": (
        "SELECT count(*) FROM supplier FOR SYSTEM_TIME FROM 0 TO 1000000"
        " WHERE sys_begin < 1000000"
    ),
    # order manipulation rewrites lineitem history; provably-empty probe
    "manipulate_order": (
        "SELECT count(*) FROM lineitem FOR SYSTEM_TIME AS OF 5"
        " WHERE sys_begin > 10"
    ),
}

#: cross-table shapes: empty scans must propagate through joins without
#: changing results, and never erase the padded side of a LEFT JOIN
EXTRA_QUERIES = [
    "SELECT count(*) FROM orders o, customer c"
    " WHERE o.o_custkey = c.c_custkey"
    " AND o.sys_begin > 10 AND o.sys_begin < 5",
    "SELECT count(*) FROM customer c LEFT JOIN orders o"
    " ON c.c_custkey = o.o_custkey AND o.sys_begin > 10 AND o.sys_begin < 5",
    "SELECT o_orderkey FROM orders"
    " WHERE sys_begin > 10 AND sys_begin < 5"
    " UNION SELECT c_custkey FROM customer ORDER BY 1 LIMIT 13",
]


def test_covers_all_nine_scenarios():
    assert sorted(SCENARIO_QUERIES) == sorted(s.name for s in SCENARIOS)


@pytest.mark.parametrize("name", list("ABCDE"))
def test_scenario_queries_identical_with_and_without_pruning(system_pairs, name):
    pruned, plain = system_pairs[name]
    for scenario, sql in sorted(SCENARIO_QUERIES.items()):
        assert pruned.execute(sql).rows == plain.execute(sql).rows, (
            name, scenario,
        )


@pytest.mark.parametrize("name", list("ABCDE"))
def test_join_and_union_shapes_identical(system_pairs, name):
    pruned, plain = system_pairs[name]
    for sql in EXTRA_QUERIES:
        assert pruned.execute(sql).rows == plain.execute(sql).rows, (name, sql)


@pytest.mark.parametrize("name", list("ABCDE"))
def test_scenario_queries_return_data(system_pairs, name):
    # the equivalence above would hold trivially on empty results; pin
    # that the non-degenerate scenario queries actually touch rows
    pruned, _ = system_pairs[name]
    counting = [
        sql for scenario, sql in SCENARIO_QUERIES.items()
        if scenario != "manipulate_order" and sql.lstrip().startswith("SELECT count")
    ]
    assert counting
    for sql in counting:
        assert pruned.execute(sql).rows[0][0] > 0, sql


class TestEmptyScanSurface:
    SQL = (
        "SELECT o_orderkey FROM orders FOR SYSTEM_TIME AS OF 5"
        " WHERE sys_begin > 10"
    )

    def _explain(self, system):
        return "\n".join(row[0] for row in system.db.execute("EXPLAIN " + self.SQL).rows)

    def test_explain_shows_empty_scan_when_enabled(self, system_pairs):
        pruned, plain = system_pairs["A"]
        assert "EmptyScan" in self._explain(pruned)
        assert "est rows=0" in self._explain(pruned)
        assert "EmptyScan" not in self._explain(plain)

    def test_empty_scan_returns_no_rows(self, system_pairs):
        pruned, plain = system_pairs["A"]
        assert pruned.execute(self.SQL).rows == []
        assert plain.execute(self.SQL).rows == []
