"""Cardinality estimation and cost-based join ordering.

Two contracts matter most: without statistics the planner must produce
byte-identical plans to the statistics-free greedy planner, and with
statistics the chosen left-deep order must be deterministic and visible
in EXPLAIN as per-node row estimates.
"""

import pytest

from repro.engine import Database
from repro.engine.plan import cost
from repro.engine.stats import ColumnStats


def _col(**kw):
    base = dict(
        count=100, nulls=0, ndv=10, min_value=0, max_value=99, histogram=()
    )
    base.update(kw)
    return ColumnStats(**base)


class TestPredicateSelectivity:
    def test_equality_uses_ndv(self):
        sketch = cost.PredicateSketch("a", "=", 5)
        assert cost.predicate_selectivity(sketch, _col()) == pytest.approx(0.1)

    def test_equality_outside_domain_is_zero(self):
        sketch = cost.PredicateSketch("a", "=", 500)
        assert cost.predicate_selectivity(sketch, _col()) == 0.0

    def test_equality_discounts_nulls(self):
        # count is the non-null count; 100 nulls next to 100 values = 0.5
        sketch = cost.PredicateSketch("a", "=", 5)
        sel = cost.predicate_selectivity(sketch, _col(nulls=100))
        assert sel == pytest.approx(0.05)

    def test_range_interpolates_minmax(self):
        sketch = cost.PredicateSketch("a", "<", 25)
        sel = cost.predicate_selectivity(sketch, _col())
        assert 0.2 < sel < 0.3

    def test_range_uses_histogram_mass(self):
        histogram = ((0, 9, 90), (10, 99, 10))  # skewed low
        sketch = cost.PredicateSketch("a", "<=", 9)
        sel = cost.predicate_selectivity(sketch, _col(histogram=histogram))
        assert sel == pytest.approx(0.9)

    def test_in_list_counts_members(self):
        sketch = cost.PredicateSketch("a", "in", count=3)
        assert cost.predicate_selectivity(sketch, _col()) == pytest.approx(0.3)

    def test_isnull_uses_null_fraction(self):
        sketch = cost.PredicateSketch("a", "isnull")
        assert cost.predicate_selectivity(
            sketch, _col(count=75, nulls=25)
        ) == pytest.approx(0.25)

    def test_unknown_predicate_is_default(self):
        sketch = cost.PredicateSketch("", "other")
        sel = cost.predicate_selectivity(sketch, _col())
        assert sel == pytest.approx(cost.DEFAULT_OTHER_SELECTIVITY)

    def test_no_stats_column_falls_back(self):
        sketch = cost.PredicateSketch("a", "=", 5)
        sel = cost.predicate_selectivity(sketch, None)
        assert sel == pytest.approx(cost.DEFAULT_EQ_SELECTIVITY)


class TestScanEstimate:
    def test_sums_partitions(self):
        parts = [
            cost.PartitionSketch("current", 100, {"a": _col()}),
            cost.PartitionSketch("history", 50, {"a": _col(count=50)}),
        ]
        est = cost.estimate_scan_rows(parts, [])
        assert est == pytest.approx(150)

    def test_applies_selectivity_per_partition(self):
        parts = [cost.PartitionSketch("current", 100, {"a": _col()})]
        est = cost.estimate_scan_rows(
            parts, [cost.PredicateSketch("a", "=", 5)]
        )
        assert est == pytest.approx(10)


class TestOrderJoins:
    def _units(self, rows):
        return [
            cost.UnitSketch(index=i, bindings=frozenset([f"t{i}"]), rows=r, ndv={})
            for i, r in enumerate(rows)
        ]

    def _chain_edges(self, n):
        # t0 -- t1 -- t2 ... equi-edges with no ndv info
        return [
            cost.EdgeSketch(
                bindings=frozenset([f"t{i}", f"t{i+1}"]),
                keys=((f"t{i}", "k"), (f"t{i+1}", "k")),
            )
            for i in range(n - 1)
        ]

    def test_dp_prefers_selective_start(self):
        # chain t0(1000) -- t1(5) -- t2(2 after a filter): joining the two
        # small relations first strictly beats any order starting with t0
        units = [
            cost.UnitSketch(0, frozenset(["t0"]), 1000, {("t0", "k"): 1000}),
            cost.UnitSketch(1, frozenset(["t1"]), 5,
                            {("t1", "k"): 5, ("t1", "j"): 5}),
            cost.UnitSketch(2, frozenset(["t2"]), 2, {("t2", "j"): 100}),
        ]
        edges = [
            cost.EdgeSketch(frozenset(["t0", "t1"]),
                            (("t0", "k"), ("t1", "k"))),
            cost.EdgeSketch(frozenset(["t1", "t2"]),
                            (("t1", "j"), ("t2", "j"))),
        ]
        result = cost.order_joins(units, edges)
        assert result.method == "dp"
        assert set(result.order[:2]) == {1, 2}
        assert result.order[-1] == 0

    def test_dp_is_deterministic(self):
        units = self._units([10, 10, 10])
        edges = self._chain_edges(3)
        first = cost.order_joins(units, edges)
        for _ in range(5):
            assert cost.order_joins(units, edges).order == first.order

    def test_dp_prefers_connected_extension(self):
        # t0 -- t1 but t2 disconnected: cross product must come last
        units = self._units([10, 20, 30])
        edges = self._chain_edges(2)
        result = cost.order_joins(units, edges)
        assert result.order[-1] == 2

    def test_prefix_rows_lengths(self):
        units = self._units([10, 20, 30])
        result = cost.order_joins(units, self._chain_edges(3))
        # first unit's rows, then one entry per join step
        assert len(result.prefix_rows) == 3
        assert result.prefix_rows[0] == 10

    def test_greedy_fallback_above_dp_limit(self):
        n = cost.MAX_DP_RELATIONS + 1
        units = self._units([10] * n)
        result = cost.order_joins(units, self._chain_edges(n))
        assert result.method == "greedy"
        assert sorted(result.order) == list(range(n))


def _build_db():
    database = Database()
    ddl = (
        "CREATE TABLE {name} (id integer NOT NULL, fk integer, v integer,"
        " sb timestamp, se timestamp,"
        " PRIMARY KEY (id), PERIOD FOR system_time (sb, se))"
    )
    for name, rows in (("small", 10), ("mid", 100), ("big", 400)):
        database.execute(ddl.format(name=name))
        for i in range(rows):
            database.execute(
                f"INSERT INTO {name} (id, fk, v) VALUES (?, ?, ?)",
                [i, i % 10, i % 20],
            )
    return database


@pytest.fixture
def joined_db():
    return _build_db()


_THREE_WAY = (
    "SELECT count(*) FROM small, mid, big"
    " WHERE small.id = mid.fk AND mid.id = big.fk AND big.v < 2"
)


class TestPlannerIntegration:
    def test_no_stats_plan_identical_to_greedy(self, joined_db):
        # two databases with identical data: one analyzed then made stale,
        # one never analyzed — their plan text must match byte for byte
        twin = _build_db()
        twin.analyze()
        for db in (twin, joined_db):
            for name in ("small", "mid", "big"):
                db.execute(
                    f"INSERT INTO {name} (id, fk, v) VALUES (9999, 0, 0)"
                )
        assert twin.explain(_THREE_WAY) == joined_db.explain(_THREE_WAY)

    def test_explain_shows_estimates(self, joined_db):
        assert "(est rows=" in joined_db.explain("SELECT v FROM small")

    def test_explain_analyze_shows_est_and_actual(self, joined_db):
        text = joined_db.explain_analyze("SELECT v FROM small WHERE v = 1")
        assert "est rows=" in text and "actual rows=" in text

    def test_stats_change_join_order(self, joined_db):
        before = joined_db.explain(_THREE_WAY)
        joined_db.analyze()
        after = joined_db.explain(_THREE_WAY)
        assert before != after
        counters = joined_db.metrics.snapshot()["counters"]
        assert counters["plan.cost_based_joins"] >= 1

    def test_results_identical_with_and_without_stats(self, joined_db):
        before = joined_db.execute(_THREE_WAY).rows
        joined_db.analyze()
        joined_db.execute("SELECT 1")  # nudge: any statement after analyze
        after = joined_db.execute(_THREE_WAY).rows
        assert before == after

    def test_greedy_counter_without_stats(self, joined_db):
        joined_db.execute(_THREE_WAY)
        counters = joined_db.metrics.snapshot()["counters"]
        assert counters["plan.greedy_joins"] >= 1
        assert counters["plan.cost_based_joins"] == 0

    def test_stale_stats_fall_back_to_greedy_plan(self, joined_db):
        # stale stats must produce the same plan a never-analyzed twin does
        twin = _build_db()
        joined_db.analyze()
        for db in (joined_db, twin):
            for name in ("small", "mid", "big"):
                db.execute(
                    f"INSERT INTO {name} (id, fk, v) VALUES (999, 0, 0)"
                )
        assert joined_db.explain(_THREE_WAY) == twin.explain(_THREE_WAY)
        counters = joined_db.metrics.snapshot()["counters"]
        assert counters["stats.stale"] >= 1


class TestBuildSideSwap:
    def test_swap_label_and_equivalence(self, joined_db):
        # FROM small, big: left side (10 rows) is cheaper than the
        # filtered right side, so a stats-backed plan hashes the left
        sql = (
            "SELECT count(*) FROM small, big"
            " WHERE big.fk = small.id AND big.v < 2"
        )
        before_rows = joined_db.execute(sql).rows
        assert "build=left" not in joined_db.explain(sql)
        joined_db.analyze()
        text = joined_db.explain(sql)
        assert "build=left" in text
        assert joined_db.execute(sql).rows == before_rows

    def test_left_join_never_swaps(self, joined_db):
        sql = (
            "SELECT count(*) FROM small LEFT JOIN big ON big.fk = small.id"
        )
        joined_db.analyze()
        assert "build=left" not in joined_db.explain(sql)
