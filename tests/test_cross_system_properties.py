"""Property-based cross-system consistency: at ANY system-time tick and any
application day, all four architectures agree — the paper's premise that
the systems differ in performance, never in answers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loader import Loader
from repro.systems import make_system


@pytest.fixture(scope="module")
def agreement_fixture(tiny_workload):
    systems = {}
    for name in "ABCD":
        system = make_system(name)
        Loader(system, tiny_workload).load()
        systems[name] = system
    return tiny_workload, systems


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_property_snapshot_counts_agree(agreement_fixture, data):
    workload, systems = agreement_fixture
    tick = data.draw(st.integers(
        workload.meta.initial_tick, workload.meta.last_tick
    ))
    counts = {
        name: system.execute(
            "SELECT count(*), count(DISTINCT o_custkey) FROM orders"
            " FOR SYSTEM_TIME AS OF ?", [tick]
        ).rows
        for name, system in systems.items()
    }
    assert len(set(map(tuple, (tuple(c) for c in counts.values())))) == 1, (tick, counts)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_property_bitemporal_point_agrees(agreement_fixture, data):
    workload, systems = agreement_fixture
    tick = data.draw(st.integers(
        workload.meta.initial_tick, workload.meta.last_tick
    ))
    day = data.draw(st.integers(
        workload.meta.first_history_day - 2000, workload.meta.last_history_day
    ))
    sql = (
        "SELECT count(*), sum(c_acctbal) FROM customer"
        " FOR SYSTEM_TIME AS OF :t FOR BUSINESS_TIME AS OF :d"
    )
    results = {}
    for name, system in systems.items():
        rows = system.execute(sql, {"t": tick, "d": day}).rows
        count, total = rows[0]
        results[name] = (count, round(total, 4) if total is not None else None)
    assert len(set(results.values())) == 1, (tick, day, results)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_property_snapshots_are_monotone_in_inserts(agreement_fixture, data):
    """LINEITEM is insert-dominated: its version count AS OF t is
    non-decreasing in t up to deletions (cancel scenarios), so the total
    across ALL must never be below any snapshot count."""
    workload, systems = agreement_fixture
    system = systems["A"]
    tick = data.draw(st.integers(
        workload.meta.initial_tick, workload.meta.last_tick
    ))
    snapshot = system.execute(
        "SELECT count(*) FROM lineitem FOR SYSTEM_TIME AS OF ?", [tick]
    ).scalar()
    total = system.execute(
        "SELECT count(*) FROM lineitem FOR SYSTEM_TIME ALL"
    ).scalar()
    assert snapshot <= total
