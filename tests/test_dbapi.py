"""PEP 249 driver conformance tests."""

import pytest

from repro.engine import dbapi


@pytest.fixture
def conn():
    connection = dbapi.connect()
    cur = connection.cursor()
    cur.execute("CREATE TABLE t (a integer, b varchar(10))")
    cur.executemany(
        "INSERT INTO t (a, b) VALUES (?, ?)",
        [(1, "one"), (2, "two"), (3, "three")],
    )
    return connection


def test_module_globals():
    assert dbapi.apilevel == "2.0"
    assert dbapi.paramstyle == "qmark"
    assert dbapi.threadsafety == 1
    # exception ladder present and correctly rooted
    assert issubclass(dbapi.ProgrammingError, dbapi.DatabaseError)
    assert issubclass(dbapi.DatabaseError, dbapi.Error)


def test_fetchone_iteration(conn):
    cur = conn.cursor()
    cur.execute("SELECT a, b FROM t ORDER BY a")
    assert cur.fetchone() == (1, "one")
    assert cur.fetchone() == (2, "two")
    assert cur.fetchone() == (3, "three")
    assert cur.fetchone() is None


def test_fetchmany_and_fetchall(conn):
    cur = conn.cursor()
    cur.execute("SELECT a FROM t ORDER BY a")
    assert cur.fetchmany(2) == [(1,), (2,)]
    assert cur.fetchall() == [(3,)]


def test_cursor_iterable(conn):
    cur = conn.cursor()
    cur.execute("SELECT a FROM t ORDER BY a")
    assert [row[0] for row in cur] == [1, 2, 3]


def test_description_and_rowcount(conn):
    cur = conn.cursor()
    cur.execute("SELECT a AS alpha, b FROM t")
    assert [d[0] for d in cur.description] == ["alpha", "b"]
    cur.execute("INSERT INTO t (a, b) VALUES (9, 'nine')")
    assert cur.rowcount == 1
    assert cur.description is None


def test_parameters_positional_and_named(conn):
    cur = conn.cursor()
    cur.execute("SELECT b FROM t WHERE a = ?", [2])
    assert cur.fetchone() == ("two",)
    cur.execute("SELECT b FROM t WHERE a = :key", {"key": 3})
    assert cur.fetchone() == ("three",)


def test_fetch_before_execute_raises(conn):
    cur = conn.cursor()
    with pytest.raises(dbapi.ProgrammingError):
        cur.fetchone()


def test_closed_cursor_rejects_use(conn):
    cur = conn.cursor()
    cur.close()
    with pytest.raises(dbapi.InterfaceError):
        cur.execute("SELECT 1")


def test_closed_connection_rejects_cursor(conn):
    conn.close()
    with pytest.raises(dbapi.InterfaceError):
        conn.cursor()


def test_connection_context_manager():
    with dbapi.connect() as connection:
        cur = connection.cursor()
        cur.execute("CREATE TABLE x (a integer)")
    with pytest.raises(dbapi.InterfaceError):
        connection.cursor()


def test_explicit_transaction_shares_tick(conn):
    cur = conn.cursor()
    cur.execute(
        "CREATE TABLE v (id integer, sb timestamp, se timestamp,"
        " PERIOD FOR system_time (sb, se))"
    )
    conn.begin()
    cur.execute("INSERT INTO v (id) VALUES (1)")
    cur.execute("INSERT INTO v (id) VALUES (2)")
    conn.commit()
    cur.execute("SELECT DISTINCT sb FROM v")
    assert len(cur.fetchall()) == 1


def test_connect_by_system_name():
    connection = dbapi.connect(system="C")
    assert connection.database.default_options.store_kind == "column"
    with pytest.raises(dbapi.InterfaceError):
        dbapi.connect(database=connection.database, system="A")
