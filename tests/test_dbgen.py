"""Initial population generator tests (dbgen equivalent)."""

from repro.core.dbgen import (
    ORDER_MAX_DAY,
    InitialData,
    generate_initial,
    retail_price,
    scaled,
)
from repro.engine.types import END_OF_TIME


def test_determinism():
    a = generate_initial(0.0005, seed=7)
    b = generate_initial(0.0005, seed=7)
    assert a.tables == b.tables


def test_different_seeds_differ():
    a = generate_initial(0.0005, seed=7)
    b = generate_initial(0.0005, seed=8)
    assert a["customer"] != b["customer"]


def test_cardinalities_scale_linearly():
    small = generate_initial(0.0005).counts()
    large = generate_initial(0.001).counts()
    assert large["customer"] == 2 * small["customer"]
    assert large["orders"] == 2 * small["orders"]
    assert small["region"] == large["region"] == 5
    assert small["nation"] == large["nation"] == 25


def test_scaled_floors_at_one():
    assert scaled(10_000, 0.0000001) == 1


def test_retail_price_formula():
    assert retail_price(1) == (90000 + 0 + 100) / 100.0


def test_partsupp_four_suppliers_per_part():
    data = generate_initial(0.001)
    per_part = {}
    for row in data["partsupp"]:
        per_part.setdefault(row["ps_partkey"], set()).add(row["ps_suppkey"])
    assert all(len(v) == 4 for v in per_part.values())


def test_lineitem_dates_consistent():
    data = generate_initial(0.0005)
    orders = {o["o_orderkey"]: o for o in data["orders"]}
    for row in data["lineitem"]:
        order = orders[row["l_orderkey"]]
        assert row["l_shipdate"] > order["o_orderdate"]
        assert row["l_receiptdate"] > row["l_shipdate"]
        assert order["o_orderdate"] <= ORDER_MAX_DAY


def test_app_time_derived_from_value_columns():
    """§4.1: application times derive from shipdate/receiptdate etc."""
    data = generate_initial(0.0005)
    for row in data["lineitem"]:
        assert row["l_active_begin"] <= row["l_shipdate"]
        assert row["l_active_end"] == row["l_receiptdate"]
    for row in data["orders"]:
        assert row["o_active_begin"] == row["o_orderdate"]
        if row["o_orderstatus"] == "O":
            assert row["o_active_end"] == END_OF_TIME


def test_totalprice_matches_lineitems():
    data = generate_initial(0.0002)
    sums = {}
    for row in data["lineitem"]:
        amount = row["l_extendedprice"] * (1 + row["l_tax"]) * (1 - row["l_discount"])
        sums[row["l_orderkey"]] = sums.get(row["l_orderkey"], 0.0) + amount
    for order in data["orders"]:
        assert abs(order["o_totalprice"] - sums[order["o_orderkey"]]) < 0.01


def test_initial_data_counts_accessor():
    data = InitialData()
    assert data.counts()["orders"] == 0
