"""INSERT / UPDATE / DELETE through SQL, including FOR PORTION OF."""

import pytest

from repro.engine.errors import ProgrammingError
from repro.engine.types import END_OF_TIME


def _seed(db):
    db.execute(
        "INSERT INTO item (id, name, price, ab, ae) VALUES "
        "(1, 'widget', 10.0, 0, 100), (2, 'gadget', 20.0, 0, 100)"
    )


class TestInsert:
    def test_insert_sets_system_time(self, db):
        _seed(db)
        result = db.execute("SELECT sb, se FROM item WHERE id = 1")
        sb, se = result.rows[0]
        assert sb >= 1 and se == END_OF_TIME

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("INSERT INTO item (id, name) VALUES (1)")

    def test_insert_select(self, db):
        _seed(db)
        db.execute("CREATE TABLE names (n varchar(32))")
        db.execute("INSERT INTO names (n) SELECT name FROM item")
        assert db.execute("SELECT count(*) FROM names").scalar() == 2

    def test_rowcount(self, db):
        result = db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES "
            "(5, 'a', 1.0, 0, 10), (6, 'b', 2.0, 0, 10)"
        )
        assert result.rowcount == 2


class TestUpdate:
    def test_plain_update_versions(self, db):
        _seed(db)
        db.execute("UPDATE item SET price = price + 1 WHERE id = 1")
        assert db.execute(
            "SELECT price FROM item WHERE id = 1"
        ).scalar() == 11.0
        # the old version is in the history
        versions = db.execute(
            "SELECT count(*) FROM item FOR SYSTEM_TIME ALL WHERE id = 1"
        ).scalar()
        assert versions == 2

    def test_update_all_rows(self, db):
        _seed(db)
        result = db.execute("UPDATE item SET price = 0")
        assert result.rowcount == 2

    def test_portion_update_splits(self, db):
        _seed(db)
        db.execute(
            "UPDATE item FOR PORTION OF business_time FROM 20 TO 50 "
            "SET price = 99.0 WHERE id = 1"
        )
        rows = db.execute(
            "SELECT ab, ae, price FROM item WHERE id = 1 ORDER BY ab"
        ).rows
        assert rows == [(0, 20, 10.0), (20, 50, 99.0), (50, 100, 10.0)]

    def test_update_references_old_row_values(self, db):
        _seed(db)
        db.execute("UPDATE item SET name = name || '!' WHERE id = 2")
        assert db.execute("SELECT name FROM item WHERE id = 2").scalar() == "gadget!"

    def test_update_by_subquery_where(self, db):
        _seed(db)
        db.execute(
            "UPDATE item SET price = 0 WHERE price = (SELECT max(price) FROM item)"
        )
        assert db.execute("SELECT price FROM item WHERE id = 2").scalar() == 0


class TestDelete:
    def test_delete_archives(self, db):
        _seed(db)
        result = db.execute("DELETE FROM item WHERE id = 1")
        assert result.rowcount == 1
        assert db.execute("SELECT count(*) FROM item").scalar() == 1
        assert db.execute(
            "SELECT count(*) FROM item FOR SYSTEM_TIME ALL"
        ).scalar() == 2

    def test_portion_delete(self, db):
        _seed(db)
        db.execute(
            "DELETE FROM item FOR PORTION OF business_time FROM 0 TO 30 WHERE id = 1"
        )
        rows = db.execute("SELECT ab, ae FROM item WHERE id = 1").rows
        assert rows == [(30, 100)]

    def test_delete_everything(self, db):
        _seed(db)
        assert db.execute("DELETE FROM item").rowcount == 2


class TestDdlThroughSql:
    def test_create_index_and_drop(self, db):
        _seed(db)
        db.execute("CREATE INDEX idx_price ON item (price)")
        assert any(i.name == "idx_price" for i in db.catalog.indexes())
        db.execute("DROP INDEX idx_price")
        assert not any(i.name == "idx_price" for i in db.catalog.indexes())

    def test_drop_table(self, db):
        db.execute("CREATE TABLE tmp (x integer)")
        db.execute("DROP TABLE tmp")
        with pytest.raises(Exception):
            db.execute("SELECT * FROM tmp")


class TestTransactionsShareTicks:
    def test_batched_statements_share_system_time(self, db):
        with db.begin():
            db.execute(
                "INSERT INTO item (id, name, price, ab, ae) VALUES (1, 'a', 1.0, 0, 10)"
            )
            db.execute(
                "INSERT INTO item (id, name, price, ab, ae) VALUES (2, 'b', 2.0, 0, 10)"
            )
        rows = db.execute("SELECT sb FROM item ORDER BY id").rows
        assert rows[0] == rows[1]

    def test_unbatched_statements_get_distinct_ticks(self, db):
        db.execute("INSERT INTO item (id, name, price, ab, ae) VALUES (1, 'a', 1.0, 0, 10)")
        db.execute("INSERT INTO item (id, name, price, ab, ae) VALUES (2, 'b', 2.0, 0, 10)")
        rows = db.execute("SELECT sb FROM item ORDER BY id").rows
        assert rows[0] != rows[1]


class TestManualSystemTime:
    def test_explicit_timestamps_only_on_system_d(self, db):
        with pytest.raises(Exception):
            db.insert_row_explicit("item", {"id": 9}, 5, 10)

    def test_system_d_accepts_explicit_timestamps(self):
        from repro.systems import make_system

        system = make_system("D")
        system.db.execute(
            "CREATE TABLE item (id integer NOT NULL, v integer,"
            " sb timestamp, se timestamp, PRIMARY KEY (id),"
            " PERIOD FOR system_time (sb, se))"
        )
        system.db.insert_row_explicit("item", {"id": 1, "v": 5}, 3, 8)
        rows = system.db.execute(
            "SELECT v FROM item FOR SYSTEM_TIME AS OF 4"
        ).rows
        assert rows == [(5,)]
        assert system.db.execute("SELECT count(*) FROM item").scalar() == 0
