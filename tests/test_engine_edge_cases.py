"""Edge cases across the engine: empty inputs, NULLs, odd-but-legal SQL."""

import pytest

from repro.engine import Database
from repro.engine.errors import CatalogError, ProgrammingError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer, b varchar(10))")
    return database


class TestEmptyInputs:
    def test_scan_empty_table(self, db):
        assert db.execute("SELECT * FROM t").rows == []

    def test_aggregate_empty_table(self, db):
        result = db.execute("SELECT count(*), sum(a), min(a), max(a), avg(a) FROM t")
        assert result.rows == [(0, None, None, None, None)]

    def test_group_by_empty_table_yields_no_groups(self, db):
        assert db.execute("SELECT b, count(*) FROM t GROUP BY b").rows == []

    def test_join_with_empty_side(self, db):
        db.execute("CREATE TABLE u (a integer)")
        db.execute("INSERT INTO u (a) VALUES (1)")
        assert db.execute("SELECT * FROM t, u WHERE t.a = u.a").rows == []
        left = db.execute("SELECT u.a, t.b FROM u LEFT JOIN t ON u.a = t.a")
        assert left.rows == [(1, None)]

    def test_exists_on_empty(self, db):
        db.execute("CREATE TABLE u (a integer)")
        db.execute("INSERT INTO u (a) VALUES (1)")
        result = db.execute(
            "SELECT a FROM u WHERE NOT EXISTS (SELECT 1 FROM t)"
        )
        assert result.rows == [(1,)]

    def test_in_empty_subquery(self, db):
        db.execute("CREATE TABLE u (a integer)")
        db.execute("INSERT INTO u (a) VALUES (1)")
        assert db.execute("SELECT a FROM u WHERE a IN (SELECT a FROM t)").rows == []
        assert db.execute(
            "SELECT a FROM u WHERE a NOT IN (SELECT a FROM t)"
        ).rows == [(1,)]

    def test_limit_zero(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert db.execute("SELECT a FROM t LIMIT 0").rows == []

    def test_scalar_subquery_empty_is_null(self, db):
        assert db.execute("SELECT (SELECT a FROM t)").rows == [(None,)]


class TestNullHandling:
    def _seed(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'y'), (3, NULL)")

    def test_null_join_keys_never_match(self, db):
        self._seed(db)
        result = db.execute(
            "SELECT count(*) FROM t x, t y WHERE x.a = y.a"
        )
        assert result.scalar() == 2  # only 1=1 and 3=3

    def test_group_by_null_forms_group(self, db):
        self._seed(db)
        result = db.execute("SELECT a, count(*) FROM t GROUP BY a")
        assert (None, 1) in result.rows

    def test_distinct_keeps_single_null(self, db):
        self._seed(db)
        db.execute("INSERT INTO t (a, b) VALUES (NULL, 'z')")
        result = db.execute("SELECT DISTINCT a FROM t")
        assert sum(1 for r in result.rows if r[0] is None) == 1

    def test_aggregates_skip_nulls(self, db):
        self._seed(db)
        result = db.execute("SELECT count(a), sum(a), avg(a) FROM t")
        assert result.rows == [(2, 4, 2.0)]

    def test_where_null_is_not_true(self, db):
        self._seed(db)
        assert db.execute("SELECT count(*) FROM t WHERE a > 0").scalar() == 2


class TestCatalogErrors:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("SELECT zz FROM t")

    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (x integer)")

    def test_drop_missing_index(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX nothing")

    def test_ambiguous_unqualified_column(self, db):
        db.execute("CREATE TABLE u (a integer)")
        with pytest.raises(ProgrammingError):
            db.execute("SELECT a FROM t, u WHERE t.a = u.a")


class TestOddButLegal:
    def test_quoted_identifier_roundtrip(self, db):
        db.execute('CREATE TABLE "Mixed" (x integer)')
        db.execute('INSERT INTO "Mixed" (x) VALUES (1)')
        assert db.execute('SELECT x FROM "Mixed"').scalar() == 1

    def test_union_of_three(self, db):
        result = db.execute(
            "SELECT 1 UNION SELECT 2 UNION SELECT 3 ORDER BY 1"
        )
        assert [r[0] for r in result.rows] == [1, 2, 3]

    def test_nested_derived_tables(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        result = db.execute(
            "SELECT outerq.total FROM"
            " (SELECT sum(innerq.a) AS total FROM"
            "   (SELECT a FROM t WHERE a > 0) innerq) outerq"
        )
        assert result.scalar() == 3

    def test_double_nested_correlation(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        db.execute("CREATE TABLE u (a integer)")
        db.execute("INSERT INTO u (a) VALUES (1), (2)")
        result = db.execute(
            "SELECT u.a FROM u WHERE EXISTS ("
            "  SELECT 1 FROM t WHERE t.a = u.a AND t.a IN ("
            "    SELECT x.a FROM t x WHERE x.a = u.a))"
            " ORDER BY u.a"
        )
        assert [r[0] for r in result.rows] == [1, 2]

    def test_case_in_group_by(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (5, 'y'), (9, 'z')")
        result = db.execute(
            "SELECT CASE WHEN a < 4 THEN 'low' ELSE 'high' END AS bucket,"
            "       count(*)"
            " FROM t GROUP BY CASE WHEN a < 4 THEN 'low' ELSE 'high' END"
            " ORDER BY bucket"
        )
        assert result.rows == [("high", 2), ("low", 1)]

    def test_order_by_multiple_directions(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (1, 'a'), (2, 'm')")
        result = db.execute("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert result.rows == [(2, "m"), (1, "a"), (1, "x")]

    def test_parameter_reuse(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        result = db.execute(
            "SELECT count(*) FROM t WHERE a >= :v AND a <= :v", {"v": 1}
        )
        assert result.scalar() == 1

    def test_plan_cache_reuse_with_new_params(self, db):
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        sql = "SELECT b FROM t WHERE a = ?"
        assert db.execute(sql, [1]).scalar() == "x"
        assert db.execute(sql, [2]).scalar() == "y"  # cached plan, new param


class TestStorageMaintenance:
    def test_storage_report_and_merge(self):
        from repro.systems import make_system

        system = make_system("C")
        system.execute(
            "CREATE TABLE v (id integer NOT NULL, x integer,"
            " sb timestamp, se timestamp, PRIMARY KEY (id),"
            " PERIOD FOR system_time (sb, se))"
        )
        for i in range(5):
            system.execute("INSERT INTO v (id, x) VALUES (?, ?)", [i, i])
        system.db.merge_all()
        report = system.storage_report()["v"]
        assert report["current"] == 5
        assert report["history"] == 0

    def test_drain_all_undo(self):
        from repro.systems import make_system

        system = make_system("B")
        system.execute(
            "CREATE TABLE v (id integer NOT NULL, x integer,"
            " sb timestamp, se timestamp, PRIMARY KEY (id),"
            " PERIOD FOR system_time (sb, se))"
        )
        system.execute("INSERT INTO v (id, x) VALUES (1, 1)")
        system.execute("UPDATE v SET x = 2 WHERE id = 1")
        system.db.drain_all_undo()
        table = system.db.table("v")
        assert len(table.partition("history")) == 1
