"""tools/engine_lint.py must pass on the repo and catch planted violations."""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "engine_lint", REPO_ROOT / "tools" / "engine_lint.py"
)
engine_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(engine_lint)


def _write(root: Path, relative: str, text: str):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


@pytest.fixture
def fake_repo(tmp_path):
    """A minimal clean tree the individual checks accept."""
    _write(tmp_path, "src/repro/engine/plan/rewrite.py", (
        'ALL_RULES = ("constant-folding",)\n'
        'RULE_INVARIANTS = {"constant-folding": ("result-equivalence",)}\n'
    ))
    _write(tmp_path, "src/repro/engine/plan/operators.py", (
        "class Ok:\n"
        "    def execute(self, env):\n"
        "        rows = self.children[0].rows(env)\n"
        '        guard = getattr(env, "guard_iter", None)\n'
        "        if guard is not None:\n"
        "            rows = guard(rows)\n"
        "        return [row for row in rows]\n"
    ))
    _write(tmp_path, "src/repro/engine/plan/cost.py",
           "DEFAULT_EQ_SELECTIVITY = 0.1\n")
    _write(tmp_path, "src/repro/engine/sql/parser.py", "from . import ast\n")
    _write(tmp_path, "src/repro/engine/storage/row_store.py", "import bisect\n")
    _write(tmp_path, "src/repro/engine/analyze.py",
           'RULES = (Rule("TQ001", "n", "info", "s", "p", "h"),)\n')
    _write(tmp_path, "src/repro/systems/system_a.py", (
        "profile = ArchitectureProfile(\n"
        '    rewrite_rules=("constant-folding",),\n'
        '    lint_suppressions=("TQ001",),\n'
        ")\n"
    ))
    _write(tmp_path, "docs/ANALYZER.md",
           "| TQ001 | full-history scan |\n")
    _write(tmp_path, "tests/test_analyzer.py", (
        "class TestTQ001FullHistoryScan:\n"
        "    def test_positive(self):\n"
        "        assert analyze('FOR SYSTEM_TIME ALL') == ['TQ001']\n"
        "    def test_negative(self):\n"
        "        assert analyze('AS OF 5') == []\n"
    ))
    _write(tmp_path, "src/repro/engine/obs/metrics.py", (
        'COUNTERS = {"txn.commits": "doc"}\n'
        'HISTOGRAMS = {"query.execute_s": "doc"}\n'
    ))
    _write(tmp_path, "src/repro/engine/txn.py", (
        "class T:\n"
        "    def done(self):\n"
        '        self._metrics.inc("txn.commits")\n'
    ))
    _write(tmp_path, "src/repro/engine/obs/telemetry.py", (
        'STATEMENT_METRICS = {"repro_statements_tracked": ("gauge", "d")}\n'
        'STATEMENT_FIELDS = {"calls": "d"}\n'
    ))
    _write(tmp_path, "src/repro/engine/obs/introspect.py", (
        'SYSTEM_VIEWS = {"repro_stat_tables": {"table_name": "d"}}\n'
        'INTROSPECTION_METRICS = {"repro_partition_scans": ("counter", "d")}\n'
    ))
    _write(tmp_path, "docs/OBSERVABILITY.md", (
        "`repro_statements_tracked` `repro_txn_commits` "
        "`repro_query_execute_seconds` `calls`\n"
        "`repro_stat_tables` `table_name` `repro_partition_scans`\n"
    ))
    return tmp_path


class TestRepoIsClean:
    def test_all_checks_pass_on_this_repo(self):
        assert engine_lint.run_all(REPO_ROOT) == []

    def test_cli_exit_code_zero(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "engine_lint.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout


class TestFakeRepoBaseline:
    def test_clean_tree_passes(self, fake_repo):
        assert engine_lint.run_all(fake_repo) == []


class TestOperatorGuards:
    def test_unguarded_loop_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            "class Bad:\n"
            "    def execute(self, env):\n"
            "        out = []\n"
            "        for row in self.children[0].rows(env):\n"
            "            out.append(row)\n"
            "        return out\n"
        ))
        problems = engine_lint.check_operator_guards(fake_repo)
        assert len(problems) == 1
        assert "operator-guards" in problems[0]

    def test_unguarded_comprehension_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            "class Bad:\n"
            "    def execute(self, env):\n"
            "        return [r for r in self.children[0].rows(env)]\n"
        ))
        assert engine_lint.check_operator_guards(fake_repo)

    def test_periodic_check_style_is_accepted(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            "class Ok:\n"
            "    def execute(self, env):\n"
            '        check = getattr(env, "check", None)\n'
            "        while True:\n"
            "            if check is not None:\n"
            "                check()\n"
        ))
        assert engine_lint.check_operator_guards(fake_repo) == []

    def test_loopless_execute_needs_no_guard(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            "class Ok:\n"
            "    def execute(self, env):\n"
            "        return self._rows\n"
        ))
        assert engine_lint.check_operator_guards(fake_repo) == []


class TestNoWallclock:
    @pytest.mark.parametrize("call", [
        "datetime.datetime.now()",
        "datetime.now()",
        "date.today()",
        "time.time()",
    ])
    def test_wallclock_reads_are_flagged(self, fake_repo, call):
        _write(fake_repo, "src/repro/engine/plan/operators.py",
               f"def stamp():\n    return {call}\n")
        problems = engine_lint.check_no_wallclock(fake_repo)
        assert len(problems) == 1
        assert "no-wallclock" in problems[0]

    def test_logical_clock_and_perf_counter_are_fine(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            "def ok(self):\n"
            "    a = self.db.now()\n"
            "    b = time.perf_counter()\n"
            "    return a, b\n"
        ))
        assert engine_lint.check_no_wallclock(fake_repo) == []


class TestRewriteInvariants:
    def test_undeclared_rule_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/rewrite.py", (
            'ALL_RULES = ("constant-folding", "mystery")\n'
            'RULE_INVARIANTS = {"constant-folding": ("result-equivalence",)}\n'
        ))
        problems = engine_lint.check_rewrite_invariants(fake_repo)
        assert any("mystery" in p for p in problems)

    def test_missing_result_equivalence_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/rewrite.py", (
            'ALL_RULES = ("constant-folding",)\n'
            'RULE_INVARIANTS = {"constant-folding": ("source-spans",)}\n'
        ))
        problems = engine_lint.check_rewrite_invariants(fake_repo)
        assert any("result-equivalence" in p for p in problems)

    def test_unknown_declared_rule_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/rewrite.py", (
            'ALL_RULES = ("constant-folding",)\n'
            'RULE_INVARIANTS = {\n'
            '    "constant-folding": ("result-equivalence",),\n'
            '    "ghost": ("result-equivalence",),\n'
            "}\n"
        ))
        problems = engine_lint.check_rewrite_invariants(fake_repo)
        assert any("ghost" in p for p in problems)


class TestLayering:
    @pytest.mark.parametrize("line", [
        "from ..plan import operators",
        "from ..storage.row_store import RowStore",
        "from repro.engine.plan import operators",
        "from ..index.btree import BTree",
    ])
    def test_sql_reaching_backwards_is_flagged(self, fake_repo, line):
        _write(fake_repo, "src/repro/engine/sql/parser.py", line + "\n")
        problems = engine_lint.check_layering(fake_repo)
        assert len(problems) == 1
        assert "engine/sql" in problems[0]

    @pytest.mark.parametrize("line", [
        "from ..sql import ast",
        "from .. import sql",
        "from ..plan.context import Env",
    ])
    def test_storage_reaching_up_is_flagged(self, fake_repo, line):
        _write(fake_repo, "src/repro/engine/storage/row_store.py", line + "\n")
        assert engine_lint.check_layering(fake_repo)

    def test_local_and_stdlib_imports_are_fine(self, fake_repo):
        _write(fake_repo, "src/repro/engine/sql/parser.py",
               "import bisect\nfrom . import ast\nfrom ..errors import X\n")
        assert engine_lint.check_layering(fake_repo) == []


class TestProfiles:
    def test_unknown_rewrite_rule_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/systems/system_a.py", (
            "profile = ArchitectureProfile(\n"
            '    rewrite_rules=("no-such-rule",),\n'
            ")\n"
        ))
        problems = engine_lint.check_profiles(fake_repo)
        assert any("no-such-rule" in p for p in problems)

    def test_unknown_suppression_code_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/systems/system_a.py", (
            "profile = ArchitectureProfile(\n"
            '    lint_suppressions=("TQ999",),\n'
            ")\n"
        ))
        problems = engine_lint.check_profiles(fake_repo)
        assert any("TQ999" in p for p in problems)


class TestMetricNames:
    def test_undeclared_counter_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/txn.py", (
            "class T:\n"
            "    def done(self):\n"
            '        self._metrics.inc("txn.comits")\n'  # typo
        ))
        problems = engine_lint.check_metric_names(fake_repo)
        assert len(problems) == 1
        assert "txn.comits" in problems[0]
        assert "COUNTERS" in problems[0]

    def test_undeclared_histogram_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/session.py", (
            "class S:\n"
            "    def run(self):\n"
            '        self.db.metrics.observe("query.exec_s", 0.1)\n'
        ))
        problems = engine_lint.check_metric_names(fake_repo)
        assert any("HISTOGRAMS" in p for p in problems)

    def test_declared_names_pass(self, fake_repo):
        _write(fake_repo, "src/repro/bench/service.py", (
            "def f(registry):\n"
            '    registry.inc("txn.commits")\n'
            '    registry.observe("query.execute_s", 0.5)\n'
        ))
        assert engine_lint.check_metric_names(fake_repo) == []

    def test_inc_on_unrelated_receiver_is_ignored(self, fake_repo):
        _write(fake_repo, "src/repro/engine/session.py", (
            "def f(cursor):\n"
            '    cursor.inc("not-a-metric")\n'
        ))
        assert engine_lint.check_metric_names(fake_repo) == []

    def test_missing_declarations_are_reported(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/metrics.py", "X = 1\n")
        problems = engine_lint.check_metric_names(fake_repo)
        assert any("COUNTERS" in p for p in problems)


class TestSpanCatalogue:
    def _trace_file(self, fake_repo, name="query"):
        _write(fake_repo, "src/repro/engine/session.py", (
            "def run(tracer, sql):\n"
            f'    with tracer.span("{name}"):\n'
            "        pass\n"
        ))

    def test_no_span_calls_means_clean(self, fake_repo):
        # the baseline fake repo has no tracer calls (and no OBSERVABILITY.md)
        assert engine_lint.check_span_catalogue(fake_repo) == []

    def test_documented_span_passes(self, fake_repo):
        self._trace_file(fake_repo)
        _write(fake_repo, "docs/OBSERVABILITY.md", "| `query` | root span |\n")
        assert engine_lint.check_span_catalogue(fake_repo) == []

    def test_undocumented_span_is_flagged(self, fake_repo):
        self._trace_file(fake_repo, name="mystery.phase")
        _write(fake_repo, "docs/OBSERVABILITY.md", "| `query` | root span |\n")
        problems = engine_lint.check_span_catalogue(fake_repo)
        assert len(problems) == 1
        assert "mystery.phase" in problems[0]
        assert "span-catalogue" in problems[0]

    def test_missing_catalogue_is_flagged_when_spans_exist(self, fake_repo):
        self._trace_file(fake_repo)
        problems = engine_lint.check_span_catalogue(fake_repo)
        assert any("OBSERVABILITY.md" in p for p in problems)

    def test_start_call_is_also_collected(self, fake_repo):
        _write(fake_repo, "src/repro/engine/session.py", (
            "def run(self, sql):\n"
            '    span = self._tracer.start("undocumented", sql=sql)\n'
        ))
        _write(fake_repo, "docs/OBSERVABILITY.md", "nothing here\n")
        problems = engine_lint.check_span_catalogue(fake_repo)
        assert any("undocumented" in p for p in problems)

    def test_span_on_non_tracer_receiver_is_ignored(self, fake_repo):
        _write(fake_repo, "src/repro/engine/session.py", (
            "def run(cursor):\n"
            '    cursor.span("whatever")\n'
        ))
        assert engine_lint.check_span_catalogue(fake_repo) == []


class TestBatchProtocol:
    _BASE = (
        "class Operator:\n"
        "    def execute_batches(self, env):\n"
        "        raise NotImplementedError\n"
    )

    def test_no_operator_base_means_clean(self, fake_repo):
        # the baseline fake tree has no Operator hierarchy at all
        assert engine_lint.check_batch_protocol(fake_repo) == []

    def test_compliant_subclass_passes(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            self._BASE
            + "class Filter(Operator):\n"
            "    def execute_batches(self, env):\n"
            '        check = getattr(env, "check", None)\n'
            "        out = []\n"
            "        for batch in self.children[0].batches(env):\n"
            "            if check is not None:\n"
            "                check()\n"
            "            out.append(batch)\n"
            "        return out\n"
        ))
        assert engine_lint.check_batch_protocol(fake_repo) == []

    def test_stray_execute_override_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            self._BASE
            + "class Legacy(Operator):\n"
            "    def execute_batches(self, env):\n"
            "        return []\n"
            "    def execute(self, env):\n"
            '        guard = getattr(env, "guard_iter", None)\n'
            "        return list(self._rows)\n"
        ))
        problems = engine_lint.check_batch_protocol(fake_repo)
        assert len(problems) == 1
        assert "batch-protocol" in problems[0]
        assert "Legacy" in problems[0]

    def test_missing_entrypoint_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            self._BASE
            + "class Hollow(Operator):\n"
            "    def label(self):\n"
            '        return "Hollow"\n'
        ))
        problems = engine_lint.check_batch_protocol(fake_repo)
        assert any("Hollow" in p and "neither implements" in p for p in problems)

    def test_entrypoint_inherited_through_intermediate_passes(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            self._BASE
            + "class Mid(Operator):\n"
            "    def execute_batches(self, env):\n"
            "        return []\n"
            "class Leaf(Mid):\n"
            "    def label(self):\n"
            '        return "Leaf"\n'
        ))
        assert engine_lint.check_batch_protocol(fake_repo) == []

    def test_unpolled_batch_loop_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", (
            self._BASE
            + "class Busy(Operator):\n"
            "    def execute_batches(self, env):\n"
            "        out = []\n"
            "        for batch in self.children[0].batches(env):\n"
            "            out.append(batch)\n"
            "        return out\n"
        ))
        problems = engine_lint.check_batch_protocol(fake_repo)
        assert len(problems) == 1
        assert "loops without" in problems[0]

    def test_ops_attribute_base_is_recognized(self, fake_repo):
        # planner.py spells the base as ops.Operator
        _write(fake_repo, "src/repro/engine/plan/operators.py", self._BASE)
        _write(fake_repo, "src/repro/engine/plan/planner.py", (
            "from . import operators as ops\n"
            "class _Finalize(ops.Operator):\n"
            "    def label(self):\n"
            '        return "Finalize"\n'
        ))
        problems = engine_lint.check_batch_protocol(fake_repo)
        assert any("_Finalize" in p for p in problems)


class TestTelemetryDocs:
    def test_undocumented_family_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/telemetry.py", (
            'STATEMENT_METRICS = {\n'
            '    "repro_statements_tracked": ("gauge", "d"),\n'
            '    "repro_statement_calls": ("counter", "d"),\n'
            '}\n'
            'STATEMENT_FIELDS = {"calls": "d"}\n'
        ))
        problems = engine_lint.check_telemetry_docs(fake_repo)
        assert any("repro_statement_calls" in p for p in problems)

    def test_undocumented_field_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/telemetry.py", (
            'STATEMENT_METRICS = {"repro_statements_tracked": ("gauge", "d")}\n'
            'STATEMENT_FIELDS = {"calls": "d", "rows_scanned": "d"}\n'
        ))
        problems = engine_lint.check_telemetry_docs(fake_repo)
        assert any("rows_scanned" in p for p in problems)

    def test_undocumented_counter_family_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/metrics.py", (
            'COUNTERS = {"txn.commits": "doc", "plan.cache_hit": "doc"}\n'
            'HISTOGRAMS = {"query.execute_s": "doc"}\n'
        ))
        problems = engine_lint.check_telemetry_docs(fake_repo)
        assert any("repro_plan_cache_hit" in p for p in problems)

    def test_missing_telemetry_module_is_flagged(self, fake_repo):
        (fake_repo / "src/repro/engine/obs/telemetry.py").unlink()
        problems = engine_lint.check_telemetry_docs(fake_repo)
        assert any("telemetry" in p for p in problems)


class TestViewCatalogue:
    def test_undocumented_view_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/introspect.py", (
            'SYSTEM_VIEWS = {\n'
            '    "repro_stat_tables": {"table_name": "d"},\n'
            '    "repro_stat_history": {"table_name": "d"},\n'
            '}\n'
            'INTROSPECTION_METRICS = {"repro_partition_scans": ("counter", "d")}\n'
        ))
        problems = engine_lint.check_view_catalogue(fake_repo)
        assert any("repro_stat_history" in p for p in problems)

    def test_undocumented_column_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/introspect.py", (
            'SYSTEM_VIEWS = {"repro_stat_tables": {\n'
            '    "table_name": "d", "scan_share": "d",\n'
            '}}\n'
            'INTROSPECTION_METRICS = {"repro_partition_scans": ("counter", "d")}\n'
        ))
        problems = engine_lint.check_view_catalogue(fake_repo)
        assert any(
            "scan_share" in p and "repro_stat_tables" in p for p in problems
        )

    def test_undocumented_family_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/introspect.py", (
            'SYSTEM_VIEWS = {"repro_stat_tables": {"table_name": "d"}}\n'
            'INTROSPECTION_METRICS = {\n'
            '    "repro_partition_scans": ("counter", "d"),\n'
            '    "repro_index_probes": ("counter", "d"),\n'
            '}\n'
        ))
        problems = engine_lint.check_view_catalogue(fake_repo)
        assert any("repro_index_probes" in p for p in problems)

    def test_missing_introspect_module_is_flagged(self, fake_repo):
        (fake_repo / "src/repro/engine/obs/introspect.py").unlink()
        problems = engine_lint.check_view_catalogue(fake_repo)
        assert any("view-catalogue" in p and "missing" in p for p in problems)

    def test_missing_literals_are_reported(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/introspect.py",
               "SYSTEM_VIEWS = build()\n")
        problems = engine_lint.check_view_catalogue(fake_repo)
        assert any("could not locate" in p for p in problems)


class TestRuleCatalogue:
    def test_no_rules_means_clean(self, fake_repo):
        _write(fake_repo, "src/repro/engine/analyze.py", "RULES = ()\n")
        assert engine_lint.check_rule_catalogue(fake_repo) == []

    def test_undocumented_rule_is_flagged(self, fake_repo):
        _write(fake_repo, "docs/ANALYZER.md", "nothing about the rule\n")
        problems = engine_lint.check_rule_catalogue(fake_repo)
        assert len(problems) == 1
        assert "rule-catalogue" in problems[0]
        assert "TQ001" in problems[0] and "ANALYZER.md" in problems[0]

    def test_missing_doc_file_is_flagged_once(self, fake_repo):
        (fake_repo / "docs/ANALYZER.md").unlink()
        problems = engine_lint.check_rule_catalogue(fake_repo)
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_missing_positive_test_is_flagged(self, fake_repo):
        _write(fake_repo, "tests/test_analyzer.py", (
            "class TestTQ001FullHistoryScan:\n"
            "    def test_negative(self):\n"
            "        assert analyze('AS OF 5') == []\n"
        ))
        problems = engine_lint.check_rule_catalogue(fake_repo)
        assert len(problems) == 1
        assert "positive" in problems[0]

    def test_missing_negative_test_is_flagged(self, fake_repo):
        _write(fake_repo, "tests/test_analyzer.py", (
            "class TestTQ001FullHistoryScan:\n"
            "    def test_positive(self):\n"
            "        assert analyze('ALL') == ['TQ001']\n"
        ))
        problems = engine_lint.check_rule_catalogue(fake_repo)
        assert len(problems) == 1
        assert "negative" in problems[0]

    def test_code_in_method_literal_counts_without_class_name(self, fake_repo):
        # evidence can live in a shared class when the method names the code
        _write(fake_repo, "tests/test_analyzer.py", (
            "class TestAssorted:\n"
            "    def test_positive_history(self):\n"
            "        assert fire() == ['TQ001']\n"
            "    def test_negative_history(self):\n"
            "        assert 'TQ001' not in fire()\n"
        ))
        assert engine_lint.check_rule_catalogue(fake_repo) == []

    def test_non_golden_methods_are_not_evidence(self, fake_repo):
        _write(fake_repo, "tests/test_analyzer.py", (
            "class TestTQ001FullHistoryScan:\n"
            "    def test_render(self):\n"
            "        assert 'TQ001' in render()\n"
        ))
        problems = engine_lint.check_rule_catalogue(fake_repo)
        assert len(problems) == 2  # neither positive nor negative evidence


class TestTemporalOpsCatalogue:
    OPERATORS = (
        "class TemporalAggregate:\n"
        "    pass\n"
        "class TemporalAlignJoin:\n"
        "    pass\n"
    )
    DOC = (
        "# Native temporal operators\n"
        "TemporalAggregate and TemporalAlignJoin; reached via\n"
        "GROUP BY TEMPORAL and TEMPORAL JOIN, the temporal-fusion rule\n"
        "(TQ017 suggests them), counted by plan.temporal_fusions.\n"
    )

    def test_no_operators_means_clean(self, fake_repo):
        # the fixture tree ships no native temporal operators
        assert engine_lint.check_temporal_ops_catalogue(fake_repo) == []

    def test_missing_doc_is_flagged_once(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", self.OPERATORS)
        problems = engine_lint.check_temporal_ops_catalogue(fake_repo)
        assert len(problems) == 1
        assert "temporal-ops-catalogue" in problems[0]
        assert "missing" in problems[0]

    def test_complete_doc_passes(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", self.OPERATORS)
        _write(fake_repo, "docs/TEMPORAL_OPS.md", self.DOC)
        assert engine_lint.check_temporal_ops_catalogue(fake_repo) == []

    def test_undocumented_surface_token_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", self.OPERATORS)
        _write(fake_repo, "docs/TEMPORAL_OPS.md",
               self.DOC.replace("TQ017", "TQ0__"))
        problems = engine_lint.check_temporal_ops_catalogue(fake_repo)
        assert len(problems) == 1
        assert "TQ017" in problems[0]

    def test_unlinked_architecture_doc_is_flagged(self, fake_repo):
        _write(fake_repo, "src/repro/engine/plan/operators.py", self.OPERATORS)
        _write(fake_repo, "docs/TEMPORAL_OPS.md", self.DOC)
        _write(fake_repo, "docs/ARCHITECTURE.md", "no link here\n")
        problems = engine_lint.check_temporal_ops_catalogue(fake_repo)
        assert len(problems) == 1
        assert "ARCHITECTURE.md" in problems[0]
        _write(fake_repo, "docs/ARCHITECTURE.md",
               "see TEMPORAL_OPS.md for the native operators\n")
        assert engine_lint.check_temporal_ops_catalogue(fake_repo) == []


class TestCostModel:
    def test_missing_cost_module_is_flagged(self, fake_repo):
        (fake_repo / "src/repro/engine/plan/cost.py").unlink()
        problems = engine_lint.check_cost_model(fake_repo)
        assert any("missing" in p for p in problems)

    @pytest.mark.parametrize("line", [
        "from ..sql import ast",
        "from .. import sql",
        "from repro.engine.sql.ast import Literal",
    ])
    def test_sql_import_in_cost_is_flagged(self, fake_repo, line):
        _write(fake_repo, "src/repro/engine/plan/cost.py", line + "\n")
        problems = engine_lint.check_cost_model(fake_repo)
        assert len(problems) == 1
        assert "cost-model" in problems[0]

    def test_storage_import_in_cost_is_allowed(self, fake_repo):
        # only sql is walled off; stats types come from the engine proper
        _write(fake_repo, "src/repro/engine/plan/cost.py",
               "from ..stats import ColumnStats\n")
        assert engine_lint.check_cost_model(fake_repo) == []

    def test_undeclared_optimizer_counter_is_flagged(self, fake_repo):
        # even on a receiver the metric-names check would skip
        _write(fake_repo, "src/repro/engine/database.py", (
            "def analyze(self):\n"
            '    self._m.inc("stats.analyz_runs")\n'  # typo
        ))
        problems = engine_lint.check_cost_model(fake_repo)
        assert len(problems) == 1
        assert "stats.analyz_runs" in problems[0]

    def test_declared_optimizer_counter_passes(self, fake_repo):
        _write(fake_repo, "src/repro/engine/obs/metrics.py", (
            'COUNTERS = {"txn.commits": "doc", "plan.greedy_joins": "doc"}\n'
            'HISTOGRAMS = {"query.execute_s": "doc"}\n'
        ))
        _write(fake_repo, "src/repro/engine/plan/rewrite.py", (
            'ALL_RULES = ("constant-folding",)\n'
            'RULE_INVARIANTS = {"constant-folding": ("result-equivalence",)}\n'
            "def order(metrics):\n"
            '    metrics.inc("plan.greedy_joins")\n'
        ))
        assert engine_lint.check_cost_model(fake_repo) == []

    def test_non_optimizer_counters_are_left_to_check_six(self, fake_repo):
        _write(fake_repo, "src/repro/engine/txn.py", (
            "def f(counter):\n"
            '    counter.inc("txn.whatever")\n'  # not stats.* / plan.*
        ))
        assert engine_lint.check_cost_model(fake_repo) == []
