"""Lexer/parser errors must point at the offending source position.

Satellite of the analyzer PR: the token spans that anchor analyzer
diagnostics also upgrade every syntax error from a bare character offset
to line/column plus a source fragment.
"""

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.sql.lexer import line_col, tokenize
from repro.engine.sql.parser import parse_statement


class TestLineCol:
    def test_first_character(self):
        assert line_col("SELECT 1", 0) == (1, 1)

    def test_mid_line(self):
        assert line_col("SELECT 1", 7) == (1, 8)

    def test_after_newlines(self):
        sql = "SELECT 1\nFROM t\nWHERE x"
        assert line_col(sql, sql.index("FROM")) == (2, 1)
        assert line_col(sql, sql.index("x")) == (3, 7)


class TestTokenSpans:
    def test_tokens_carry_line_and_column(self):
        tokens = tokenize("SELECT a\nFROM t")
        by_value = {t.value: t for t in tokens if t.value}
        assert (by_value["select"].line, by_value["select"].column) == (1, 1)
        assert (by_value["from"].line, by_value["from"].column) == (2, 1)

    def test_token_end_covers_the_lexeme(self):
        token = next(t for t in tokenize("SELECT abc") if t.value == "abc")
        assert "SELECT abc"[token.position:token.end] == "abc"


class TestLexerErrors:
    def test_bad_character_reports_line_and_column(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("SELECT a\nFROM t ^ 1")
        assert info.value.line == 2
        assert info.value.column == 8
        assert "line 2" in str(info.value)

    def test_unterminated_string_points_at_the_quote(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("SELECT 'oops")
        assert info.value.line == 1
        assert info.value.column == 8


class TestParserErrors:
    def test_error_on_second_line(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse_statement("SELECT a\nFROM t WHERE")
        assert info.value.line == 2
        assert "line 2" in str(info.value)

    def test_error_carries_fragment(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse_statement("SELECT a FROM t ORDER banana")
        assert info.value.fragment
        assert "banana" in info.value.fragment

    def test_unknown_explain_option(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse_statement("EXPLAIN (VERBOSE) SELECT 1")
        assert "verbose" in str(info.value).lower()

    def test_dangling_not(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t WHERE NOT")

    def test_bad_interval_unit_points_at_unit(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse_statement("SELECT date '1994-01-01' + interval '1' lightyear")
        assert info.value.line == 1
        assert info.value.column is not None
