"""Error hierarchy and Result object tests."""

from repro.engine import errors
from repro.engine.session import Result


def test_pep249_ladder():
    assert issubclass(errors.InterfaceError, errors.Error)
    assert issubclass(errors.DatabaseError, errors.Error)
    for cls in (
        errors.DataError,
        errors.OperationalError,
        errors.IntegrityError,
        errors.InternalError,
        errors.ProgrammingError,
        errors.NotSupportedError,
    ):
        assert issubclass(cls, errors.DatabaseError)


def test_engine_specific_subclasses():
    assert issubclass(errors.SqlSyntaxError, errors.ProgrammingError)
    assert issubclass(errors.CatalogError, errors.ProgrammingError)
    assert issubclass(errors.PlanError, errors.InternalError)
    assert issubclass(errors.QueryTimeout, errors.OperationalError)


def test_syntax_error_formatting():
    err = errors.SqlSyntaxError("bad token", position=7, fragment="SELEC")
    assert "offset 7" in str(err)
    assert "SELEC" in str(err)
    assert err.position == 7


def test_result_helpers():
    result = Result(rows=[(1, "a"), (2, "b")], columns=["x", "y"], rowcount=2)
    assert result.scalar() == 1
    assert len(result) == 2
    assert list(result) == [(1, "a"), (2, "b")]
    assert Result().scalar() is None
