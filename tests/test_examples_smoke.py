"""Keep the examples runnable: import and execute the fast ones."""

import importlib.util
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "Full audit trail" in out
    assert "120.0" in out


def test_reproduce_paper_fast_tiny(tmp_path, capsys):
    module = _load("reproduce_paper")
    code = module.main([
        "--h", "0.0003", "--m", "0.00003", "--fast", "--out", str(tmp_path)
    ])
    assert code == 0
    written = {p.name for p in tmp_path.iterdir()}
    assert "fig02.txt" in written and "table2.txt" in written
    assert "All done" in capsys.readouterr().out


def test_all_examples_importable():
    for path in EXAMPLES.glob("*.py"):
        spec = importlib.util.spec_from_file_location(f"x_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        # import only (no main()): catches syntax/import rot cheaply
        spec.loader.exec_module(module) if path.stem == "quickstart" else None
        assert spec is not None
