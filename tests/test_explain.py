"""EXPLAIN output sanity."""

import pytest

from repro.engine import Database
from repro.engine.errors import ProgrammingError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer NOT NULL, b integer, PRIMARY KEY (a))")
    database.execute("CREATE TABLE u (a integer, c integer)")
    return database


def test_explain_scan_and_filter(db):
    plan = db.explain("SELECT b FROM t WHERE b > 5")
    assert "Access(t" in plan
    assert "Filter" in plan


def test_explain_join_operator(db):
    plan = db.explain("SELECT 1 FROM t, u WHERE t.a = u.a")
    assert "HashJoin" in plan


def test_explain_aggregate(db):
    plan = db.explain("SELECT b, count(*) FROM t GROUP BY b")
    assert "Aggregate" in plan


def test_explain_shows_partitions(db):
    db.execute(
        "CREATE TABLE v (id integer, sb timestamp, se timestamp,"
        " PERIOD FOR system_time (sb, se))"
    )
    plan = db.explain("SELECT count(*) FROM v FOR SYSTEM_TIME AS OF 1")
    assert "history" in plan


def test_explain_rejects_dml(db):
    with pytest.raises(ProgrammingError):
        db.explain("DELETE FROM t")
