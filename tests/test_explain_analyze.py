"""EXPLAIN ANALYZE: per-operator row counts, timings and access choices."""

import re

import pytest

from repro.engine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE item ("
        " id integer NOT NULL, price integer,"
        " sb timestamp, se timestamp,"
        " PRIMARY KEY (id), PERIOD FOR system_time (sb, se))"
    )
    for i in range(30):
        database.execute(
            "INSERT INTO item (id, price) VALUES (?, ?)", [i, i * 10]
        )
    for i in range(0, 30, 3):
        database.execute("UPDATE item SET price = ? WHERE id = ?", [i, i])
    return database


class TestExplainAnalyze:
    def test_reports_actual_rows_and_time(self, db):
        text = db.explain_analyze("SELECT id FROM item WHERE price > 100")
        assert "actual rows=" in text
        assert re.search(r"time=\d+\.\d+ ms", text)
        assert "loops=1" in text

    def test_statement_form_returns_plan_rows(self, db):
        result = db.execute("EXPLAIN ANALYZE SELECT count(*) FROM item")
        assert result.columns == ["plan"]
        text = "\n".join(row[0] for row in result.rows)
        assert "Aggregate" in text
        assert "actual rows=1" in text

    def test_plain_explain_statement_has_no_counters(self, db):
        result = db.execute("EXPLAIN SELECT id FROM item")
        text = "\n".join(row[0] for row in result.rows)
        assert "Access(item" in text
        assert "actual rows" not in text

    def test_time_travel_golden_row_counts(self, db):
        """Fig. 2-style time-travel: the counters expose exactly how many
        versions each operator saw."""
        text = db.explain_analyze(
            "SELECT id, price FROM item FOR SYSTEM_TIME AS OF ? WHERE id < 10",
            [31],  # after all 30 inserts, before the updates
        )
        lines = text.splitlines()
        access = next(line for line in lines if "Access(item" in line)
        final = next(line for line in lines if "Finalize" in line)
        # both partitions are read (no pruning, Fig 6) ...
        assert "partitions=['current', 'history']" in access
        # ... and the access path reports its per-partition strategy
        assert "current: scan" in access
        # at tick 31 all 30 rows exist; 10 satisfy id < 10
        assert "actual rows=10" in final

    def test_access_detail_shows_index_choice(self, db):
        db.execute("CREATE INDEX i_price ON item (price)")
        text = db.explain_analyze(
            "SELECT id FROM item WHERE price = ?", [50]
        )
        access = next(
            line for line in text.splitlines() if "Access(item" in line
        )
        assert "index[i_price]" in access

    def test_correlated_subquery_reports_loops(self, db):
        text = db.explain_analyze(
            "SELECT id FROM item i WHERE price = "
            "(SELECT max(price) FROM item x WHERE x.id = i.id)"
        )
        loops = [
            int(m.group(1)) for m in re.finditer(r"loops=(\d+)", text)
        ]
        assert max(loops) == 30  # inner plan ran once per outer row

    def test_rejects_non_select(self, db):
        from repro.engine.errors import ProgrammingError, SqlSyntaxError

        with pytest.raises((ProgrammingError, SqlSyntaxError)):
            db.execute("EXPLAIN ANALYZE DELETE FROM item")


class TestPlanCacheLine:
    """explain_analyze reports the plan-cache outcome (plan.cache_* reuse)."""

    def test_first_call_is_a_miss(self, db):
        text = db.explain_analyze("SELECT id FROM item WHERE id = 3")
        assert text.endswith("plan cache: miss")

    def test_repeat_call_is_a_hit(self, db):
        sql = "SELECT id FROM item WHERE id = 3"
        db.explain_analyze(sql)
        assert db.explain_analyze(sql).endswith("plan cache: hit")
        # the counters behind the report are the shared plan.cache_* metrics
        assert db.metrics.counter("plan.cache_hit") >= 1

    def test_shares_cache_with_execute(self, db):
        sql = "SELECT id FROM item WHERE id = 4"
        db.execute(sql)  # populates the cache
        assert db.explain_analyze(sql).endswith("plan cache: hit")
        # and the other way round: analyze primes execute's cache
        db.metrics.reset()
        db.execute(sql)
        assert db.metrics.counter("plan.cache_hit") == 1

    def test_cache_hit_still_reports_working_set(self, db):
        """Regression: a cached plan re-runs under a fresh metrics-collecting
        ExecutionContext, so the per-operator ``ws≈`` bytes must not vanish
        (or zero out) just because planning was skipped."""
        sql = "SELECT id FROM item WHERE price > 100"
        db.execute(sql)  # populates the cache
        text = db.explain_analyze(sql)
        assert text.endswith("plan cache: hit")
        ws = [
            m.group(1)
            for m in re.finditer(r"ws≈(\S+?B)", text)
        ]
        plan_lines = [
            line for line in text.splitlines() if "actual rows=" in line
        ]
        assert len(ws) == len(plan_lines)  # every operator reports a ws
        assert any(value not in ("0B", "0.0B") for value in ws)

    def test_statement_form_bypasses(self, db):
        result = db.execute("EXPLAIN ANALYZE SELECT id FROM item")
        text = "\n".join(row[0] for row in result.rows)
        assert "plan cache: bypass" in text
        # the wrapped text must not shadow the inner SELECT's cache slot
        rows = db.execute("EXPLAIN ANALYZE SELECT id FROM item")
        assert rows.columns == ["plan"]


class TestDbapiSurface:
    def test_explain_analyze_through_cursor(self, db):
        conn = __import__(
            "repro.engine.dbapi", fromlist=["connect"]
        ).connect(database=db)
        cur = conn.cursor()
        cur.execute("EXPLAIN ANALYZE SELECT id FROM item WHERE id = 3")
        rows = cur.fetchall()
        assert cur.description[0][0] == "plan"
        assert any("actual rows=1" in row[0] for row in rows)
