"""Expression evaluation: SQL three-valued logic, functions, intervals."""

import pytest

from repro.engine.errors import ProgrammingError
from repro.engine.expr import (
    Env,
    Interval,
    Scope,
    add_interval,
    compile_expr,
    expr_to_string,
    like_match,
)
from repro.engine.sql import parse_statement
from repro.engine.types import date_to_day


def evaluate(text, row=(), layout=(), params=None):
    expr = parse_statement(f"SELECT {text}").items[0].expr
    fn = compile_expr(expr, Scope(list(layout)))
    return fn(tuple(row), Env(params or {}))


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("10 / 4") == 2.5
        assert evaluate("10 % 3") == 1
        assert evaluate("-5 + 2") == -3

    def test_null_propagation(self):
        assert evaluate("1 + NULL") is None
        assert evaluate("NULL * 2") is None

    def test_division_by_zero_is_null(self):
        assert evaluate("1 / 0") is None

    def test_concat(self):
        assert evaluate("'a' || 'b' || 1") == "ab1"


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <> 2") is False
        assert evaluate("NULL = NULL") is None

    def test_kleene_and_or(self):
        assert evaluate("1 = 1 AND NULL = 1") is None
        assert evaluate("1 = 2 AND NULL = 1") is False
        assert evaluate("1 = 1 OR NULL = 1") is True
        assert evaluate("1 = 2 OR NULL = 1") is None

    def test_not(self):
        assert evaluate("NOT 1 = 2") is True
        assert evaluate("NOT NULL = 1") is None

    def test_between(self):
        assert evaluate("5 BETWEEN 1 AND 9") is True
        assert evaluate("5 NOT BETWEEN 1 AND 9") is False
        assert evaluate("NULL BETWEEN 1 AND 2") is None

    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("9 IN (1, 2, 3)") is False
        assert evaluate("9 NOT IN (1, 2, 3)") is True
        assert evaluate("9 IN (1, NULL)") is None

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NOT NULL") is True


class TestLike:
    def test_percent_and_underscore(self):
        assert evaluate("'hello' LIKE 'h%'") is True
        assert evaluate("'hello' LIKE 'h_llo'") is True
        assert evaluate("'hello' LIKE 'h_'") is False
        assert evaluate("'hello' NOT LIKE 'x%'") is True

    def test_special_chars_escaped(self):
        assert like_match("a.b", "a.b") is True
        assert like_match("axb", "a.b") is False

    def test_null(self):
        assert like_match(None, "x") is None


class TestCase:
    def test_branches(self):
        assert evaluate("CASE WHEN 1 = 2 THEN 'a' WHEN 1 = 1 THEN 'b' END") == "b"
        assert evaluate("CASE WHEN 1 = 2 THEN 'a' ELSE 'c' END") == "c"
        assert evaluate("CASE WHEN 1 = 2 THEN 'a' END") is None


class TestDatesAndIntervals:
    def test_date_function(self):
        assert evaluate("date '1992-01-02'") == 1

    def test_add_days(self):
        assert evaluate("date '1992-01-01' + interval '10' day") == 10

    def test_add_months_clamps(self):
        jan31 = date_to_day("1992-01-31")
        result = add_interval(jan31, Interval(months=1))
        assert result == date_to_day("1992-02-29")  # leap year clamp

    def test_add_year(self):
        assert evaluate(
            "date '1994-01-01' + interval '1' year"
        ) == date_to_day("1995-01-01")

    def test_subtract_interval(self):
        assert evaluate(
            "date '1998-12-01' - interval '90' day"
        ) == date_to_day("1998-09-02")

    def test_extract(self):
        assert evaluate("extract(year FROM date '1995-06-17')") == 1995
        assert evaluate("extract(month FROM date '1995-06-17')") == 6
        assert evaluate("extract(day FROM date '1995-06-17')") == 17


class TestFunctions:
    def test_substring(self):
        assert evaluate("substring('hello' FROM 2 FOR 3)") == "ell"
        assert evaluate("substring('hello', 2)") == "ello"

    def test_coalesce_nullif(self):
        assert evaluate("coalesce(NULL, NULL, 3)") == 3
        assert evaluate("nullif(2, 2)") is None
        assert evaluate("nullif(2, 3)") == 2

    def test_misc(self):
        assert evaluate("abs(-4)") == 4
        assert evaluate("round(3.456, 1)") == 3.5
        assert evaluate("upper('ab')") == "AB"
        assert evaluate("length('abc')") == 3
        assert evaluate("greatest(1, 9, 3)") == 9
        assert evaluate("least(4, 2, 8)") == 2

    def test_unknown_function(self):
        with pytest.raises(ProgrammingError):
            evaluate("frobnicate(1)")


class TestScopes:
    def test_column_resolution(self):
        layout = [("t", "a"), ("t", "b")]
        assert evaluate("a + b", row=(3, 4), layout=layout) == 7
        assert evaluate("t.a * 2", row=(3, 4), layout=layout) == 6

    def test_ambiguous_column(self):
        layout = [("t", "a"), ("u", "a")]
        with pytest.raises(ProgrammingError):
            evaluate("a", row=(1, 2), layout=layout)

    def test_unknown_column(self):
        with pytest.raises(ProgrammingError):
            evaluate("zzz")

    def test_outer_scope_resolution(self):
        outer = Scope([("o", "x")])
        inner = Scope([("i", "y")], outer=outer)
        expr = parse_statement("SELECT o.x + i.y").items[0].expr
        fn = compile_expr(expr, inner)
        env = Env({}, outer_rows=[(10,)])
        assert fn((5,), env) == 15

    def test_params(self):
        assert evaluate("? + 1", params={0: 41}) == 42
        assert evaluate(":p * 2", params={"p": 21}) == 42
        with pytest.raises(ProgrammingError):
            evaluate(":missing")


def test_expr_to_string_smoke():
    stmt = parse_statement(
        "SELECT CASE WHEN a LIKE 'x%' THEN 1 ELSE 0 END, a IN (1,2),"
        " a BETWEEN 1 AND 2, count(*), interval '3' day, b IS NULL"
    )
    for item in stmt.items:
        assert isinstance(expr_to_string(item.expr), str)
