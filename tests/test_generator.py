"""End-to-end generator tests (§4.1) and Table 2 qualitative claims."""

import pytest

from repro.core.generator import (
    BitemporalDataGenerator,
    GeneratorConfig,
    INITIAL_TICK,
)
from repro.core.stats import insert_update_shares, operations_table, scenario_mix
from repro.engine.types import END_OF_TIME


@pytest.fixture(scope="module")
def workload():
    return BitemporalDataGenerator(GeneratorConfig(h=0.0005, m=0.0002, seed=11)).generate()


def test_config_validation():
    with pytest.raises(TypeError):
        BitemporalDataGenerator(GeneratorConfig(), h=0.1)
    assert GeneratorConfig(m=0.5).scenario_count == 500_000


def test_determinism():
    a = BitemporalDataGenerator(GeneratorConfig(h=0.0003, m=0.00005, seed=3)).generate()
    b = BitemporalDataGenerator(GeneratorConfig(h=0.0003, m=0.00005, seed=3)).generate()
    assert a.transactions == b.transactions
    assert a.meta.last_tick == b.meta.last_tick


def test_transaction_count_matches_m(workload):
    assert len(workload.transactions) == workload.config.scenario_count
    assert workload.meta.last_tick == INITIAL_TICK + len(workload.transactions)


def test_metadata_keys_exist(workload):
    meta = workload.meta
    assert meta.hottest_customer is not None
    assert meta.hottest_order is not None
    assert meta.initial_counts["orders"] > 0
    assert meta.first_scenario_tick == INITIAL_TICK + 1
    assert meta.mid_tick() > meta.initial_tick


def test_hottest_customer_is_live_and_hot(workload):
    key = (workload.meta.hottest_customer,)
    table = workload.store.table("customer")
    assert table.chain(key) is not None
    closed = sum(
        1 for values, _b, _e in workload.store.closed["customer"]
        if values["c_custkey"] == workload.meta.hottest_customer
    )
    assert closed >= 1


def test_final_versions_consistent_with_counts(workload):
    live = len(workload.final_versions("orders"))
    counts = workload.version_counts("orders")
    assert counts["live"] == live
    assert counts["total"] == live + counts["closed"]


def test_all_versions_cover_full_timeline(workload):
    for values, begin, end in workload.all_versions("customer"):
        assert INITIAL_TICK <= begin <= workload.meta.last_tick
        assert end == END_OF_TIME or begin < end <= workload.meta.last_tick


def test_current_only_mode_drops_archive():
    wl = BitemporalDataGenerator(
        GeneratorConfig(h=0.0003, m=0.00005, current_only=True)
    ).generate()
    assert wl.store.closed_count() == 0
    assert len(wl.final_versions("orders")) > 0


def test_scenario_mix_close_to_table1(workload):
    mix = scenario_mix(workload)
    assert abs(mix.get("new_order", 0) - 0.30) < 0.10
    assert abs(mix.get("deliver_order", 0) - 0.25) < 0.10


def test_table2_qualitative_shape(workload):
    shares = insert_update_shares(workload)
    assert shares["lineitem"]["insert"] > 0.5
    assert shares["customer"]["update"] > 0.6
    assert shares["part"]["update"] == 1.0
    rows = {r["table"]: r for r in operations_table(workload)}
    assert rows["nation"]["history_growth_ratio"] == 0


def test_version_chains_never_overlap(workload):
    """Store invariant: live app versions of one key never overlap."""
    for table_name in ("customer", "part", "partsupp"):
        table = workload.store.table(table_name)
        period = table.app_periods[table.primary_period]
        begin_col, end_col = period
        for key in list(table.chains)[:50]:
            spans = sorted(
                (n.values[begin_col], n.values[end_col])
                for n in table.chains[key]
            )
            for (b1, e1), (b2, e2) in zip(spans, spans[1:]):
                assert e1 <= b2, (table_name, key, spans)
