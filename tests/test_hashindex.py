"""Hash index unit tests."""

from repro.engine.index.hashindex import HashIndex


def test_insert_search():
    index = HashIndex()
    index.insert("k", 1)
    index.insert("k", 2)
    assert sorted(index.search("k")) == [1, 2]
    assert index.search("missing") == []


def test_len_and_contains():
    index = HashIndex()
    assert len(index) == 0
    index.insert(1, "a")
    assert len(index) == 1
    assert 1 in index and 2 not in index


def test_remove():
    index = HashIndex()
    index.insert(1, "a")
    index.insert(1, "b")
    assert index.remove(1, "a")
    assert index.search(1) == ["b"]
    assert not index.remove(1, "zzz")
    assert index.remove(1, "b")
    assert 1 not in index
    assert not index.remove(1, "b")


def test_items_and_keys():
    index = HashIndex()
    for i in range(5):
        index.insert(i % 2, i)
    assert sorted(index.keys()) == [0, 1]
    assert sorted(index.items()) == [(0, 0), (0, 2), (0, 4), (1, 1), (1, 3)]
