"""Generator-side versioned store: the linked-list structure of §4.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import GeneratorStore, VersionChain, VersionNode
from repro.engine.types import Period

SPEC = [("t", ("id",), {"app": ("ab", "ae")})]


def _store():
    return GeneratorStore(SPEC)


def _values(key, value, ab=0, ae=100):
    return {"id": key, "v": value, "ab": ab, "ae": ae}


class TestVersionChain:
    def test_insert_keeps_app_order(self):
        chain = VersionChain("ab")
        for begin in (50, 10, 90, 30):
            chain.insert(VersionNode({"ab": begin}, 1))
        assert [n.values["ab"] for n in chain] == [10, 30, 50, 90]

    def test_remove_relinks(self):
        chain = VersionChain("ab")
        nodes = [VersionNode({"ab": i}, 1) for i in (1, 2, 3)]
        for node in nodes:
            chain.insert(node)
        chain.remove(nodes[1])
        assert [n.values["ab"] for n in chain] == [1, 3]
        chain.remove(nodes[0])
        chain.remove(nodes[2])
        assert len(chain) == 0
        assert chain.head is None and chain.tail is None

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 1000), max_size=80))
    def test_property_always_sorted(self, begins):
        chain = VersionChain("ab")
        for begin in begins:
            chain.insert(VersionNode({"ab": begin}, 1))
        ordered = [n.values["ab"] for n in chain]
        assert ordered == sorted(begins)
        assert len(chain) == len(begins)


class TestGeneratorTable:
    def test_insert_and_nontemporal_update_spills(self):
        store = _store()
        table = store.table("t")
        table.insert(_values(1, "a"), tick=1)
        table.nontemporal_update((1,), {"v": "b"}, tick=2)
        assert store.closed["t"][0][1:] == (1, 2)  # sys_begin, sys_end
        assert [v["v"] for v, _ in table.current_versions()] == ["b"]

    def test_sequenced_update_splits(self):
        store = _store()
        table = store.table("t")
        table.insert(_values(1, "a", 0, 100), tick=1)
        affected = table.sequenced_update(
            (1,), {"v": "x"}, Period(20, 50), tick=2, period_name="app"
        )
        assert affected == 1
        spans = sorted(
            (v["ab"], v["ae"], v["v"]) for v, _ in table.current_versions()
        )
        assert spans == [(0, 20, "a"), (20, 50, "x"), (50, 100, "a")]

    def test_sequenced_delete_counts_as_overwrite(self):
        store = _store()
        table = store.table("t")
        table.insert(_values(1, "a", 0, 100), tick=1)
        table.sequenced_delete((1,), Period(0, 100), tick=2, period_name="app")
        assert table.stats.app_time_overwrites == 1
        assert table.chain((1,)) is None

    def test_delete_spills_everything(self):
        store = _store()
        table = store.table("t")
        table.insert(_values(1, "a", 0, 50), tick=1)
        table.insert(_values(1, "b", 50, 100), tick=1)
        assert table.delete((1,), tick=3) == 2
        assert len(store.closed["t"]) == 2
        assert store.closed_count() == 2

    def test_unknown_period_rejected(self):
        table = _store().table("t")
        table.insert(_values(1, "a"), tick=1)
        with pytest.raises(ValueError):
            table.sequenced_update((1,), {}, Period(0, 1), 2, period_name="zz")

    def test_stats_accumulate(self):
        store = _store()
        table = store.table("t")
        table.insert(_values(1, "a"), tick=1)
        table.insert(_values(2, "b"), tick=1)
        table.nontemporal_update((1,), {"v": "c"}, tick=2)
        table.sequenced_update((2,), {"v": "d"}, Period(0, 10), 3, period_name="app")
        table.delete((1,), tick=4)
        stats = table.stats.as_dict()
        assert stats["app_time_insert"] == 2
        assert stats["nontemporal_update"] == 1
        assert stats["app_time_update"] == 1
        assert stats["delete"] == 1


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 90), st.integers(1, 20), st.integers(0, 99)),
        max_size=20,
    )
)
def test_property_generator_matches_engine_semantics(ops):
    """The generator-side sequenced update must produce exactly the same
    visible state as the engine's temporal module — otherwise replayed
    systems would diverge from the generator's bookkeeping."""
    from repro.engine import temporal
    from repro.engine.catalog import Column, PeriodDef, TableSchema
    from repro.engine.storage.versioned import StorageOptions, VersionedTable
    from repro.engine.types import SqlType

    schema = TableSchema(
        "t",
        [
            Column("id", SqlType.INTEGER), Column("v", SqlType.INTEGER),
            Column("ab", SqlType.DATE), Column("ae", SqlType.DATE),
            Column("sb", SqlType.TIMESTAMP), Column("se", SqlType.TIMESTAMP),
        ],
        primary_key=("id",),
        periods=[
            PeriodDef("app", "ab", "ae"),
            PeriodDef("system_time", "sb", "se", is_system=True),
        ],
    )
    engine_table = VersionedTable(schema, StorageOptions())
    temporal.temporal_insert(engine_table, [1, 0, 0, 120, None, None], 1)
    store = GeneratorStore(SPEC)
    gen_table = store.table("t")
    gen_table.insert({"id": 1, "v": 0, "ab": 0, "ae": 120}, tick=1)

    tick = 2
    for begin, width, value in ops:
        portion = Period(begin, begin + width)
        temporal.sequenced_update(engine_table, (1,), {"v": value}, "app", portion, tick)
        gen_table.sequenced_update((1,), {"v": value}, portion, tick, period_name="app")
        tick += 1

    engine_state = sorted(
        (row[2], row[3], row[1]) for row in temporal.snapshot_rows(engine_table, None)
    )
    generator_state = sorted(
        (v["ab"], v["ae"], v["v"]) for v, _ in gen_table.current_versions()
    )
    assert engine_state == generator_state
