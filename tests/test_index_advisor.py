"""Index advisor tests (the §5.4 appendix study)."""

import pytest

from repro.core.loader import Loader
from repro.core.queries import tpch
from repro.systems import make_system
from repro.systems.advisor import IndexAdvisor


@pytest.fixture(scope="module")
def advised_system(tiny_workload):
    system = make_system("A")
    Loader(system, tiny_workload).load()
    return system


def _advise(system, mode):
    advisor = IndexAdvisor(system.db)
    queries = [tpch.tpch_query(n, mode) for n in tpch.all_numbers()]
    return advisor, advisor.advise(queries, mode=mode)


def test_plain_mode_proposes_predicate_columns(advised_system):
    _advisor, advice = _advise(advised_system, "plain")
    assert advice.count() > 10
    tables = advice.per_table()
    assert "lineitem" in tables and "orders" in tables
    # single-column candidates on the current partition only
    assert all(len(c.columns) == 1 for c in advice.candidates)
    assert all(c.partition == "current" for c in advice.candidates)


def test_app_mode_extends_with_time_columns(advised_system):
    _advisor, advice = _advise(advised_system, "app")
    lineitem = [c for c in advice.candidates if c.table == "lineitem"]
    assert any("l_active_begin" in c.columns for c in lineitem)


def test_sys_mode_doubles_across_partitions(advised_system):
    """The paper's 54 → 309 inflation: system-time advice reflects the
    history-table split (one candidate per partition)."""
    _advisor, plain = _advise(advised_system, "plain")
    _advisor, sys_advice = _advise(advised_system, "sys")
    assert sys_advice.count() > plain.count()
    partitions = {c.partition for c in sys_advice.candidates}
    assert partitions == {"current", "history"}
    # roughly doubled for the versioned tables
    versioned = [c for c in sys_advice.candidates if c.table == "orders"]
    currents = sum(1 for c in versioned if c.partition == "current")
    histories = sum(1 for c in versioned if c.partition == "history")
    assert currents == histories


def test_ordering_matches_paper(advised_system):
    """plain < app <= sys, like 54 < 301 <= 309."""
    counts = {}
    for mode in ("plain", "app", "sys"):
        _advisor, advice = _advise(advised_system, mode)
        counts[mode] = advice.count()
    assert counts["plain"] < counts["app"]
    assert counts["plain"] < counts["sys"]
    assert counts["sys"] >= counts["app"] * 0.8


def test_apply_and_drop(advised_system):
    advisor, advice = _advise(advised_system, "plain")
    created = advisor.apply(advice)
    assert len(created) == advice.count()
    names = {i.name for i in advised_system.db.catalog.indexes()}
    assert set(created) <= names
    # applying the advice must not change any query's answer
    before = advised_system.execute(tpch.tpch_query(6, "plain")).rows
    assert advised_system.execute(tpch.tpch_query(6, "plain")).rows == before
    assert advisor.drop_applied() == len(created)


def test_summary_render(advised_system):
    _advisor, advice = _advise(advised_system, "plain")
    text = advice.summary()
    assert "index advisor (plain)" in text
    assert "lineitem" in text
