"""System views: SQL-queryable introspection of engine internals.

The five ``repro_stat_*`` relations must behave like ordinary tables in
the SQL pipeline (filters, joins, grouping, EXPLAIN, plan cache) while
reporting storage/index access state without perturbing it.
"""

import pytest

from repro.core.loader import Loader
from repro.core.queries import Workload
from repro.engine import Database
from repro.engine.errors import CatalogError, ProgrammingError
from repro.engine.obs.introspect import (
    INTROSPECTION_METRICS,
    SYSTEM_VIEWS,
    is_system_view,
    view_columns,
)
from repro.engine.obs.telemetry import validate_openmetrics
from repro.systems import make_system


def _insert(db, lo, hi):
    for i in range(lo, hi):
        db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES "
            f"({i}, 'n{i}', {float(i)}, 0, 100)"
        )


# -- resolution --------------------------------------------------------------


class TestResolution:
    def test_catalogue_shape(self):
        assert set(SYSTEM_VIEWS) == {
            "repro_stat_tables", "repro_stat_indexes", "repro_stat_history",
            "repro_stat_statements", "repro_stat_metrics",
        }
        for name, columns in SYSTEM_VIEWS.items():
            assert is_system_view(name)
            assert view_columns(name) == tuple(columns)

    def test_ordinary_names_resolve_to_none(self):
        assert view_columns("item") is None
        assert not is_system_view("item")

    @pytest.mark.parametrize("name", sorted(SYSTEM_VIEWS))
    def test_select_star_matches_declared_layout(self, db, name):
        result = db.execute(f"SELECT * FROM {name}")
        assert tuple(result.columns) == view_columns(name)

    def test_resolution_is_case_insensitive(self, db):
        result = db.execute("SELECT * FROM REPRO_STAT_TABLES")
        assert tuple(result.columns) == view_columns("repro_stat_tables")

    def test_temporal_clause_is_rejected(self, db):
        with pytest.raises(ProgrammingError, match="system view"):
            db.execute(
                "SELECT * FROM repro_stat_tables FOR SYSTEM_TIME AS OF 1"
            )

    def test_create_table_with_reserved_prefix_fails(self, db):
        with pytest.raises(CatalogError, match="reserved"):
            db.execute(
                "CREATE TABLE repro_stat_mine (id integer NOT NULL, "
                "PRIMARY KEY (id))"
            )

    def test_create_view_with_reserved_prefix_fails(self, db):
        with pytest.raises(CatalogError, match="reserved"):
            db.execute(
                "CREATE VIEW repro_stat_v AS SELECT id FROM item"
            )


# -- composability: the views are ordinary relations to the planner ---------


class TestComposability:
    def test_filter_composes(self, db):
        _insert(db, 0, 3)
        rows = db.execute(
            "SELECT partition, row_count FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        assert rows == [("current", 3)]

    def test_order_by_and_limit_compose(self, db):
        _insert(db, 0, 2)
        rows = db.execute(
            "SELECT name FROM repro_stat_metrics ORDER BY name LIMIT 3"
        ).rows
        assert len(rows) == 3
        assert rows == sorted(rows)

    def test_group_by_composes(self, db):
        _insert(db, 0, 4)
        db.execute("UPDATE item SET price = 9.0 WHERE id = 0")
        (row,) = db.execute(
            "SELECT table_name, SUM(row_count) FROM repro_stat_tables "
            "WHERE table_name = 'item' GROUP BY table_name"
        ).rows
        assert row == ("item", 5)  # 4 current + 1 history version

    def test_view_joins_view(self, db):
        _insert(db, 0, 2)
        db.execute("UPDATE item SET price = 5.0 WHERE id = 1")
        rows = db.execute(
            "SELECT t.partition, h.chain_depth "
            "FROM repro_stat_tables t "
            "JOIN repro_stat_history h "
            "  ON t.table_name = h.table_name AND t.partition = h.partition "
            "WHERE t.table_name = 'item'"
        ).rows
        assert rows  # both sides produced matching partitions

    def test_view_joins_real_table(self, db):
        _insert(db, 0, 2)
        rows = db.execute(
            "SELECT i.id, t.row_count FROM item i "
            "JOIN repro_stat_tables t ON t.table_name = 'item' "
            "WHERE t.partition = 'current'"
        ).rows
        assert sorted(rows) == [(0, 2), (1, 2)]

    def test_explain_shows_virtual_scan(self, db):
        plan = db.explain(
            "SELECT * FROM repro_stat_tables WHERE partition = 'history'"
        )
        assert "VirtualScan(repro_stat_tables)" in plan

    def test_cached_plan_reassembles_rows(self, db):
        sql = (
            "SELECT row_count FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        )
        _insert(db, 0, 1)
        assert db.execute(sql).rows == [(1,)]
        _insert(db, 1, 3)
        # second execution hits the plan cache but must see fresh rows
        before = db.metrics.counter("plan.cache_hit")
        assert db.execute(sql).rows == [(3,)]
        assert db.metrics.counter("plan.cache_hit") == before + 1


# -- repro_stat_tables: scan accounting and freshness ------------------------


class TestStatTables:
    def test_scans_and_rows_read_accumulate(self, db):
        _insert(db, 0, 5)
        db.execute("SELECT id FROM item WHERE price > 1")
        db.execute("SELECT id FROM item WHERE price > 2")
        (row,) = db.execute(
            "SELECT scans, rows_read, scan_share FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        scans, rows_read, share = row
        assert scans >= 2
        assert rows_read >= 10
        assert share == 1.0  # history never scanned yet

    def test_view_queries_do_not_perturb_counters(self, db):
        _insert(db, 0, 3)
        db.execute("SELECT id FROM item")
        sql = (
            "SELECT scans, rows_read FROM repro_stat_tables "
            "WHERE table_name = 'item'"
        )
        first = db.execute(sql).rows
        second = db.execute(sql).rows
        assert first == second  # introspection is side-effect free

    def test_scan_partition_quiet_is_silent(self, db):
        _insert(db, 0, 3)
        table = db.table("item")
        part = table._partitions["current"]
        metrics_before = db.metrics.counter("storage.current_scans")
        access_before = part.access.scans
        rows = list(table.scan_partition_quiet("current"))
        assert len(rows) == 3
        assert db.metrics.counter("storage.current_scans") == metrics_before
        assert part.access.scans == access_before

    def test_est_bytes_positive_for_populated_partition(self, db):
        _insert(db, 0, 3)
        (row,) = db.execute(
            "SELECT est_bytes FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        assert row[0] > 0

    def test_freshness_lifecycle(self, db):
        _insert(db, 0, 3)
        (row,) = db.execute(
            "SELECT last_analyze, stats_stale FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        assert row == (None, None)  # never analyzed
        db.analyze("item")
        (row,) = db.execute(
            "SELECT last_analyze, stats_stale FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        assert row[0] is not None
        assert row[1] == 0  # fresh
        _insert(db, 3, 4)  # DML invalidates the snapshot
        (row,) = db.execute(
            "SELECT stats_stale FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        assert row == (1,)


# -- repro_stat_indexes ------------------------------------------------------


class TestStatIndexes:
    def test_probe_accounting(self, db):
        _insert(db, 0, 8)
        db.execute("CREATE INDEX item_price ON item (price)")
        (row,) = db.execute(
            "SELECT kind, columns, entries FROM repro_stat_indexes "
            "WHERE index_name = 'item_price'"
        ).rows
        assert row[0] == "btree"
        assert row[1] == "price"
        assert row[2] == 8
        db.execute("SELECT id FROM item WHERE price = 3.0")
        (row,) = db.execute(
            "SELECT probes, range_scans, rows_returned "
            "FROM repro_stat_indexes WHERE index_name = 'item_price'"
        ).rows
        assert row[0] + row[1] >= 1  # the lookup went through the index
        assert row[2] >= 1

    def test_timeline_index_row_on_system_e(self, tiny_workload):
        system = make_system("E")
        Loader(system, tiny_workload).load()
        rows = system.execute(
            "SELECT index_name, partition, kind FROM repro_stat_indexes "
            "WHERE kind = 'timeline'"
        ).rows
        assert rows  # every System E table carries a timeline index
        assert all(name.endswith("_timeline") for name, _, _ in rows)
        assert all(partition == "all" for _, partition, _ in rows)


# -- repro_stat_history: version-chain shape ---------------------------------


class TestStatHistory:
    def test_chain_depth_buckets(self, db):
        _insert(db, 0, 4)
        for _ in range(3):
            db.execute("UPDATE item SET price = price + 1 WHERE id = 0")
        rows = db.execute(
            "SELECT chain_depth, chains, versions, live_versions, "
            "dead_versions FROM repro_stat_history "
            "WHERE table_name = 'item' AND partition = 'history' "
            "ORDER BY chain_depth"
        ).rows
        (depth, chains, versions, live, dead) = rows[0]
        assert (depth, chains) == (3, 1)  # id 0 left three closed versions
        assert versions == dead == 3
        assert live == 0  # history holds only superseded versions

    def test_current_chains_are_live(self, db):
        _insert(db, 0, 2)
        (row,) = db.execute(
            "SELECT chains, live_versions, dead_versions "
            "FROM repro_stat_history "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        assert row == (2, 2, 0)

    def test_temporal_extents(self, db):
        _insert(db, 0, 1)
        db.execute("UPDATE item SET price = 2.0 WHERE id = 0")
        (row,) = db.execute(
            "SELECT sys_time_min, sys_time_max, app_time_min, app_time_max "
            "FROM repro_stat_history "
            "WHERE table_name = 'item' AND partition = 'history'"
        ).rows
        sys_min, sys_max, app_min, app_max = row
        assert sys_min is not None and sys_max is not None
        assert sys_min <= sys_max
        assert (app_min, app_max) == (0, 100)


# -- repro_stat_statements and repro_stat_metrics ----------------------------


class TestStatStatements:
    def test_statement_store_is_queryable(self, db):
        db.enable_telemetry()
        _insert(db, 0, 3)
        db.execute("SELECT id FROM item WHERE price > 1")
        rows = db.execute(
            "SELECT query, calls FROM repro_stat_statements "
            "WHERE query LIKE 'select id from item%'"
        ).rows
        assert rows == [("select id from item where price > ?", 1)]

    def test_empty_while_telemetry_off(self, db):
        _insert(db, 0, 2)
        db.execute("SELECT id FROM item")
        assert db.execute("SELECT * FROM repro_stat_statements").rows == []


class TestStatMetrics:
    def test_counters_and_histograms_are_rows(self, db):
        _insert(db, 0, 2)
        (row,) = db.execute(
            "SELECT kind, value FROM repro_stat_metrics "
            "WHERE name = 'txn.commits'"
        ).rows
        assert row[0] == "counter"
        assert row[1] >= 2
        (row,) = db.execute(
            "SELECT kind, value, obs_count, p50 FROM repro_stat_metrics "
            "WHERE name = 'query.execute_s'"
        ).rows
        assert row[0] == "histogram"
        assert row[1] is None  # counter-only column
        assert row[2] >= 1 and row[3] is not None  # the SELECT above observed


# -- fig02-style run: the split the paper measures ---------------------------


class TestWorkloadConsistency:
    @pytest.fixture(scope="class")
    def driven_system_a(self, tiny_workload):
        system = make_system("A")
        Loader(system, tiny_workload).load()
        # no reset_metrics(): the registry and the access counters must
        # have seen the exact same history for the consistency check
        for query in Workload():
            system.execute(query.sql, query.params(tiny_workload.meta))
        return system

    def test_scan_split_is_non_trivial(self, driven_system_a):
        rows = driven_system_a.execute(
            "SELECT partition, SUM(scans) FROM repro_stat_tables "
            "GROUP BY partition"
        ).rows
        split = dict(rows)
        assert split.get("current", 0) > 0
        assert split.get("history", 0) > 0  # temporal queries hit history

    def test_view_totals_match_registry(self, driven_system_a):
        counters = driven_system_a.db.metrics.counters()
        rows = driven_system_a.execute(
            "SELECT partition, SUM(scans), SUM(rows_read) "
            "FROM repro_stat_tables GROUP BY partition"
        ).rows
        split = {partition: (scans, read) for partition, scans, read in rows}
        # unsplit (non-temporal) tables scan their SINGLE partition through
        # the current-scan path, so the registry folds both together
        current = [
            split.get(name, (0, 0)) for name in ("current", "single")
        ]
        assert (
            sum(scans for scans, _ in current)
            == counters["storage.current_scans"]
        )
        assert split["history"][0] == counters["storage.history_scans"]
        assert (
            sum(read for _, read in current)
            == counters["storage.current_rows_scanned"]
        )
        assert split["history"][1] == counters["storage.history_rows_scanned"]


# -- OpenMetrics exposition of the new families ------------------------------


class TestIntrospectionOpenMetrics:
    @pytest.mark.parametrize("name", "ABCDE")
    def test_exposition_validates_mid_workload(self, tiny_workload, name):
        system = make_system(name)
        Loader(system, tiny_workload).load()
        system.enable_telemetry()
        for query in list(Workload())[:4]:  # mid-workload, counters hot
            system.execute(query.sql, query.params(tiny_workload.meta))
        text = system.openmetrics()
        assert validate_openmetrics(text) == []
        for family, (kind, _help) in INTROSPECTION_METRICS.items():
            assert f"# TYPE {family} {kind}" in text
        assert 'repro_partition_scans_total{' in text
        assert 'partition="current"' in text or 'partition="single"' in text


# -- auto-ANALYZE: armed by the long-lived entry points ----------------------


class TestAutoAnalyzeArming:
    def test_prepare_systems_arms_the_default_threshold(self, tiny_workload):
        from repro.bench.experiments import prepare_systems
        from repro.engine.database import DEFAULT_AUTO_ANALYZE_THRESHOLD

        systems = prepare_systems(tiny_workload, names="A")
        (system,) = systems.values()
        assert (
            system.db.auto_analyze_threshold == DEFAULT_AUTO_ANALYZE_THRESHOLD
        )

    def test_plain_database_stays_manual(self):
        assert Database().auto_analyze_threshold is None

    def test_last_analyze_proves_the_trigger_fired(self, db):
        db.auto_analyze_threshold = 8
        _insert(db, 0, 8)  # crosses the threshold
        assert db.metrics.counter("stats.auto_analyze_runs") >= 1
        (row,) = db.execute(
            "SELECT last_analyze, stats_stale FROM repro_stat_tables "
            "WHERE table_name = 'item' AND partition = 'current'"
        ).rows
        assert row[0] is not None  # the view shows the auto snapshot
        assert row[1] == 0  # taken after the triggering mutation: fresh
