"""Join-correctness regressions and order-independence properties.

Three families:

* ``Materialized`` must hand out a private copy of its backing rows —
  consumers sort and extend result lists in place, and aliasing the
  backing list corrupted every later reuse.
* ``MergeJoin`` must treat NULL (and NaN) keys like every other join:
  they match nothing, on either input, even inside composite keys.
* Join output must be a pure function of the query, not of the FROM
  order, the ``join-reorder`` rule, or the presence of statistics —
  checked exhaustively over table permutations and across archetypes.
"""

import itertools

import pytest

from repro.core.loader import Loader
from repro.engine import Database
from repro.engine.database import ArchitectureProfile
from repro.engine.expr import Env
from repro.engine.plan import operators as ops
from repro.systems import make_system


def _env():
    return Env({})


def col(i):
    return lambda row, env: row[i]


def rows_of(op):
    return op.rows(_env())


class TestMaterializedAliasing:
    def test_execute_returns_a_copy(self):
        backing = [(1,), (2,), (3,)]
        op = ops.Materialized(backing)
        first = op.execute(_env())
        first.append((99,))
        first.reverse()
        assert op.execute(_env()) == [(1,), (2,), (3,)]

    def test_consumer_mutation_does_not_leak_into_reuse(self):
        # a reused subplan result fed to two joins: the first consumer
        # sorting in place must not change what the second consumer sees
        op = ops.Materialized([(2, "b"), (1, "a")])
        seen_first = op.execute(_env())
        seen_first.sort()
        probe = ops.HashJoin(
            ops.Materialized([(1, "x")]), op, [col(0)], [col(0)]
        )
        assert rows_of(probe) == [(1, "x", 1, "a")]
        assert op.execute(_env()) == [(2, "b"), (1, "a")]


class TestMergeJoinNullKeys:
    """Every NULL-key arrangement, checked against HashJoin and a
    SQL-semantics NestedLoopJoin on the same inputs."""

    def _agree(self, left, right, width=2):
        merge = ops.MergeJoin(
            ops.Materialized(left), ops.Materialized(right), col(0), col(0)
        )
        hashj = ops.HashJoin(
            ops.Materialized(left), ops.Materialized(right), [col(0)], [col(0)]
        )

        def sql_eq(row, env):
            lval, rval = row[0], row[width]
            if lval is None or rval is None:
                return None  # SQL three-valued logic: NULL matches nothing
            return lval == rval

        nested = ops.NestedLoopJoin(
            ops.Materialized(left), ops.Materialized(right), sql_eq
        )
        merged = sorted(rows_of(merge), key=repr)
        assert merged == sorted(rows_of(hashj), key=repr)
        assert merged == sorted(rows_of(nested), key=repr)
        return merged

    def test_null_keys_on_both_inputs(self):
        left = [(1, "a"), (None, "n1"), (2, "b"), (None, "n2")]
        right = [(None, "nn"), (1, "x"), (3, "z")]
        got = self._agree(left, right)
        assert got == [(1, "a", 1, "x")]

    def test_all_null_left_input(self):
        got = self._agree([(None, "n1"), (None, "n2")], [(None, "m"), (1, "x")])
        assert got == []

    def test_null_run_does_not_consume_real_matches(self):
        # NULLs sort last; skipping them must leave the pointer on the
        # other side untouched so later equal runs still pair up
        left = [(None, "n"), (5, "a"), (5, "b")]
        right = [(5, "x"), (None, "m"), (5, "y")]
        got = self._agree(left, right)
        assert len(got) == 4

    def test_composite_key_with_null_part_matches_nothing(self):
        left = [(1, 10, "a"), (1, None, "b"), (2, 20, "c")]
        right = [(1, 10, "x"), (None, 10, "y"), (2, 20, "z")]
        key = lambda row, env: (row[0], row[1])
        merge = ops.MergeJoin(
            ops.Materialized(left), ops.Materialized(right), key, key
        )
        hashj = ops.HashJoin(
            ops.Materialized(left), ops.Materialized(right),
            [col(0), col(1)], [col(0), col(1)],
        )
        got = sorted(rows_of(merge))
        assert got == sorted(rows_of(hashj))
        assert got == [
            (1, 10, "a", 1, 10, "x"),
            (2, 20, "c", 2, 20, "z"),
        ]

    def test_nan_keys_never_match_and_never_stall(self):
        # distinct NaN objects so no identity shortcut anywhere
        left = [(float("nan"), "l1"), (1.0, "l2")]
        right = [(float("nan"), "r1"), (1.0, "r2")]
        got = self._agree(left, right)
        assert got == [(1.0, "l2", 1.0, "r2")]

    def test_sql_level_null_join_agreement(self):
        """The same contract through SQL: a nullable join key must yield
        the same rows whichever physical join the planner picks."""
        database = Database()
        database.execute(
            "CREATE TABLE l (id integer NOT NULL, k integer, PRIMARY KEY (id))"
        )
        database.execute(
            "CREATE TABLE r (id integer NOT NULL, k integer, PRIMARY KEY (id))"
        )
        for i, k in enumerate([1, None, 2, None]):
            database.execute("INSERT INTO l (id, k) VALUES (?, ?)", [i, k])
        for i, k in enumerate([None, 1, 3]):
            database.execute("INSERT INTO r (id, k) VALUES (?, ?)", [i, k])
        rows = database.execute(
            "SELECT l.id, r.id FROM l, r WHERE l.k = r.k"
        ).rows
        assert sorted(rows) == [(0, 1)]


# -- order independence ------------------------------------------------------


def _chain_db(rules):
    database = Database(profile=ArchitectureProfile(rewrite_rules=rules))
    spec = (("t1", 8), ("t2", 30), ("t3", 60), ("t4", 15))
    for name, count in spec:
        database.execute(
            f"CREATE TABLE {name} (id integer NOT NULL, fk integer,"
            " v integer, PRIMARY KEY (id))"
        )
        for i in range(count):
            database.execute(
                f"INSERT INTO {name} (id, fk, v) VALUES (?, ?, ?)",
                [i, i % 8, i % 5],
            )
    return database


_CHAIN4 = (
    "SELECT t1.id, t2.id, t3.id, t4.id FROM {order}"
    " WHERE t1.id = t2.fk AND t2.id = t3.fk AND t3.id = t4.fk"
    " AND t4.v < 3"
)


class TestPermutationInvariance:
    @pytest.mark.parametrize("rules", [
        ("constant-folding", "predicate-pushdown", "join-reorder"),
        ("constant-folding", "predicate-pushdown"),
    ], ids=["reorder-on", "reorder-off"])
    @pytest.mark.parametrize("analyzed", [False, True],
                             ids=["no-stats", "stats"])
    def test_four_table_chain_all_permutations(self, rules, analyzed):
        database = _chain_db(rules)
        if analyzed:
            database.analyze()
        reference = None
        for perm in itertools.permutations(("t1", "t2", "t3", "t4")):
            rows = database.execute(
                _CHAIN4.format(order=", ".join(perm))
            ).rows
            multiset = sorted(rows)
            if reference is None:
                reference = multiset
            assert multiset == reference, perm
        assert reference  # the chain actually joins something


@pytest.fixture(scope="module")
def archetype_systems(tiny_workload):
    systems = {}
    for name in "ABCDE":
        system = make_system(name)
        Loader(system, tiny_workload).load()
        systems[name] = system
    return systems


_THREE_TABLE = (
    "SELECT c_custkey, o_orderkey, l_suppkey FROM {order}"
    " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
)


class TestArchetypePermutationInvariance:
    def test_three_table_permutations_per_archetype(self, archetype_systems):
        """All 6 FROM orders agree within each archetype, without stats
        and again after ANALYZE arms the cost model — and the (sorted)
        answer is the same across archetypes A-E."""
        cross_system = None
        for name, system in archetype_systems.items():
            reference = None
            for analyzed in (False, True):
                if analyzed:
                    system.analyze()
                for perm in itertools.permutations(
                    ("customer", "orders", "lineitem")
                ):
                    rows = system.execute(
                        _THREE_TABLE.format(order=", ".join(perm))
                    ).rows
                    multiset = sorted(rows)
                    if reference is None:
                        reference = multiset
                    assert multiset == reference, (name, analyzed, perm)
            assert reference
            if cross_system is None:
                cross_system = reference
            assert reference == cross_system, name
