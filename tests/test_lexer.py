"""SQL tokenizer tests."""

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


def test_keywords_and_identifiers():
    assert kinds("SELECT foo FROM bar") == [
        ("keyword", "select"), ("ident", "foo"),
        ("keyword", "from"), ("ident", "bar"),
    ]


def test_case_insensitive_keywords():
    assert kinds("SeLeCt")[0] == ("keyword", "select")


def test_numbers():
    assert kinds("42 3.14 0.5")[0] == ("number", 42)
    assert kinds("3.14")[0] == ("number", 3.14)


def test_number_then_dot_not_confused():
    # "1." followed by an identifier: the dot is punctuation
    tokens = kinds("a.b")
    assert tokens == [("ident", "a"), ("op", "."), ("ident", "b")]


def test_strings_with_escaped_quote():
    tokens = kinds("'it''s'")
    assert tokens == [("string", "it's")]


def test_unterminated_string():
    with pytest.raises(SqlSyntaxError):
        tokenize("'oops")


def test_operators():
    ops = [v for k, v in kinds("a <= b <> c >= d != e || f") if k == "op"]
    assert ops == ["<=", "<>", ">=", "<>", "||"]


def test_params():
    tokens = kinds("c = ? AND d = :name")
    assert ("param", None) in tokens
    assert ("param", "name") in tokens


def test_line_comment_skipped():
    assert kinds("SELECT 1 -- hello\n+ 2") == [
        ("keyword", "select"), ("number", 1), ("op", "+"), ("number", 2)
    ]


def test_block_comment_skipped():
    assert kinds("1 /* anything\n at all */ 2") == [("number", 1), ("number", 2)]


def test_unterminated_block_comment():
    with pytest.raises(SqlSyntaxError):
        tokenize("/* nope")


def test_quoted_identifier():
    assert kinds('"Weird Name"') == [("ident", "weird name")]


def test_unexpected_character():
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT @")


def test_positions_recorded():
    tokens = tokenize("SELECT x")
    assert tokens[0].position == 0
    assert tokens[1].position == 7
