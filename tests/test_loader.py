"""Loader tests: replay equivalence across systems, bulk load, batching."""

import pytest

from repro.core.loader import Loader, load_nontemporal_baseline
from repro.engine import Database
from repro.engine.errors import NotSupportedError
from repro.systems import make_system


def test_all_systems_agree_on_current_state(tiny_workload):
    counts = {}
    for name in "ABCD":
        system = make_system(name)
        Loader(system, tiny_workload).load()
        counts[name] = {
            "orders": system.execute("SELECT count(*) FROM orders").scalar(),
            "total": system.execute(
                "SELECT count(*) FROM orders FOR SYSTEM_TIME ALL"
            ).scalar(),
            "sum": round(system.execute(
                "SELECT sum(o_totalprice) FROM orders"
            ).scalar(), 2),
        }
    assert len({tuple(v.items()) for v in counts.values()}) == 1, counts


def test_loader_matches_generator_bookkeeping(tiny_workload):
    system = make_system("A")
    Loader(system, tiny_workload).load()
    for table in ("orders", "customer", "partsupp"):
        expected = tiny_workload.version_counts(table)
        got = system.execute(
            f"SELECT count(*) FROM {table} FOR SYSTEM_TIME ALL"
        ).scalar()
        assert got == expected["total"], table
        live = system.execute(f"SELECT count(*) FROM {table}").scalar()
        assert live == expected["live"], table


def test_initial_load_shares_one_tick(tiny_workload):
    system = make_system("A")
    Loader(system, tiny_workload).load()
    # all version-0 rows share the single bulk-transaction tick
    distinct = system.execute(
        "SELECT count(DISTINCT sys_begin) FROM supplier FOR SYSTEM_TIME AS OF ?",
        [tiny_workload.meta.initial_tick],
    ).scalar()
    assert distinct == 1


def test_bulk_load_matches_replay(tiny_workload):
    replayed = make_system("D")
    Loader(replayed, tiny_workload).load()
    bulk = make_system("D")
    Loader(bulk, tiny_workload).bulk_load()
    for tick in (tiny_workload.meta.initial_tick, tiny_workload.meta.mid_tick(),
                 tiny_workload.meta.last_tick):
        q = "SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF ?"
        assert replayed.execute(q, [tick]).scalar() == bulk.execute(q, [tick]).scalar(), tick


def test_bulk_load_rejected_on_immutable_systems(tiny_workload):
    system = make_system("A")
    with pytest.raises(NotSupportedError):
        Loader(system, tiny_workload).bulk_load()


def test_batch_size_reduces_transactions(tiny_workload):
    system = make_system("A")
    report = Loader(system, tiny_workload).load(batch_size=10)
    assert report.transactions == (len(tiny_workload.transactions) + 9) // 10
    distinct = system.execute(
        "SELECT count(DISTINCT sys_begin) FROM customer FOR SYSTEM_TIME ALL"
    ).scalar()
    assert distinct <= report.transactions + 1


def test_latency_collection(tiny_workload):
    system = make_system("B")
    report = Loader(system, tiny_workload).load(collect_latencies=True)
    assert len(report.scenario_latencies) == report.transactions
    assert report.p97_latency() >= report.median_latency()


def test_nontemporal_baseline_versions(tiny_workload):
    initial = Database()
    load_nontemporal_baseline(initial, tiny_workload, version="initial")
    final = Database()
    load_nontemporal_baseline(final, tiny_workload, version="final")
    initial_orders = initial.execute("SELECT count(*) FROM orders").scalar()
    final_orders = final.execute("SELECT count(*) FROM orders").scalar()
    assert initial_orders == tiny_workload.meta.initial_counts["orders"]
    assert final_orders != initial_orders
    # baseline tables are plain: no temporal columns at all
    assert not initial.table("orders").is_versioned
    with pytest.raises(ValueError):
        load_nontemporal_baseline(Database(), tiny_workload, version="bogus")
