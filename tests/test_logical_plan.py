"""Logical plan IR: construction, rewrite rules, and rule gating."""

import pytest

from repro.engine import Database
from repro.engine.database import ArchitectureProfile
from repro.engine.plan import (
    LogicalFilter,
    LogicalJoin,
    LogicalProduct,
    LogicalScan,
    LogicalValues,
    build_logical,
)
from repro.engine.sql import ast, parse_statement


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orders ("
        " o_id integer NOT NULL, cust integer, total integer,"
        " sb timestamp, se timestamp,"
        " PRIMARY KEY (o_id), PERIOD FOR system_time (sb, se))"
    )
    database.execute(
        "CREATE TABLE customers ("
        " c_id integer NOT NULL, region integer, PRIMARY KEY (c_id))"
    )
    for i in range(20):
        database.execute(
            "INSERT INTO orders (o_id, cust, total) VALUES (?, ?, ?)",
            [i, i % 5, i * 10],
        )
    for i in range(5):
        database.execute(
            "INSERT INTO customers (c_id, region) VALUES (?, ?)", [i, i % 2]
        )
    return database


def _select(sql):
    stmt = parse_statement(sql)
    assert isinstance(stmt, ast.Select)
    return stmt


def _logical(db, sql):
    return db._sql_engine.planner.logical_plan(_select(sql))


# -- construction -----------------------------------------------------------


class TestBuilder:
    def test_single_table_becomes_scan_under_filter(self, db):
        query = build_logical(_select("SELECT o_id FROM orders WHERE total > 5"), db)
        assert isinstance(query.relation, LogicalFilter)
        assert query.relation.label == "where"
        scan = query.relation.child
        assert isinstance(scan, LogicalScan)
        assert scan.binding == "orders"
        assert scan.pushed == ()  # pushdown has not run yet

    def test_multi_table_from_becomes_product(self, db):
        query = build_logical(
            _select("SELECT o_id FROM orders, customers WHERE cust = c_id"), db
        )
        product = query.relation.child
        assert isinstance(product, LogicalProduct)
        assert len(product.units) == 2
        assert product.bindings == {"orders", "customers"}

    def test_from_less_select_uses_values(self, db):
        query = build_logical(_select("SELECT 1 WHERE 1 = 2"), db)
        assert isinstance(query.relation, LogicalFilter)
        assert query.relation.label == "no-from"
        assert isinstance(query.relation.child, LogicalValues)

    def test_scan_estimate_includes_history_only_with_system_clause(self, db):
        db.execute("UPDATE orders SET total = 999 WHERE o_id = 1")
        plain = build_logical(_select("SELECT o_id FROM orders"), db)
        temporal = build_logical(
            _select("SELECT o_id FROM orders FOR SYSTEM_TIME ALL"), db
        )
        scan_plain = plain.relation
        scan_temporal = temporal.relation
        assert isinstance(scan_plain, LogicalScan)
        assert scan_temporal.est_rows > scan_plain.est_rows

    def test_explicit_join_keeps_conjuncts(self, db):
        query = build_logical(
            _select(
                "SELECT o_id FROM orders JOIN customers ON cust = c_id"
            ),
            db,
        )
        join = query.relation
        assert isinstance(join, LogicalJoin)
        assert join.kind == "inner"
        assert len(join.conjuncts) == 1


# -- rewrite rules ----------------------------------------------------------


class TestConstantFolding:
    def test_folds_closed_arithmetic(self, db):
        query = _logical(db, "SELECT o_id FROM orders WHERE total > 10 * 10")
        assert "constant-folding" in query.applied_rules
        scan = query.relation
        assert isinstance(scan, LogicalScan)
        conjunct = scan.pushed[0]
        assert isinstance(conjunct.right, ast.Literal)
        assert conjunct.right.value == 100

    def test_does_not_fold_columns_or_params(self, db):
        query = _logical(db, "SELECT o_id FROM orders WHERE total > ?")
        assert "constant-folding" not in query.applied_rules

    def test_positional_order_by_is_not_created_by_folding(self, db):
        # ORDER BY 1+1 sorts by the constant 2 (a no-op), NOT by column 2
        rows = db.execute(
            "SELECT o_id, total FROM orders WHERE o_id < 3 ORDER BY 1 + 1"
        ).rows
        assert sorted(r[0] for r in rows) == [0, 1, 2]

    def test_folding_preserves_results(self, db):
        sql = "SELECT o_id, total + 2 * 3 FROM orders WHERE total >= 5 * 2 ORDER BY o_id"
        expected = [(i, i * 10 + 6) for i in range(1, 20)]
        assert db.execute(sql).rows == expected


class TestPredicatePushdown:
    def test_single_table_conjunct_lands_on_scan(self, db):
        query = _logical(db, "SELECT o_id FROM orders WHERE total > 50")
        scan = query.relation
        assert isinstance(scan, LogicalScan)
        assert len(scan.pushed) == 1
        assert "predicate-pushdown" in query.applied_rules

    def test_join_conjunct_becomes_edge_not_residual(self, db):
        query = _logical(
            db,
            "SELECT o_id FROM orders, customers "
            "WHERE cust = c_id AND total > 50 AND region = 1",
        )
        # both single-table conjuncts pushed; the equi conjunct became a join
        assert isinstance(query.relation, LogicalJoin)
        scans = {}
        stack = [query.relation]
        while stack:
            node = stack.pop()
            if isinstance(node, LogicalScan):
                scans[node.binding] = node
            else:
                stack.extend(node.children())
        assert len(scans["orders"].pushed) == 1
        assert len(scans["customers"].pushed) == 1

    def test_subquery_conjunct_is_never_pushed(self, db):
        query = _logical(
            db,
            "SELECT o_id FROM orders "
            "WHERE total IN (SELECT c_id FROM customers)",
        )
        assert isinstance(query.relation, LogicalFilter)
        scan = query.relation.child
        assert isinstance(scan, LogicalScan)
        assert scan.pushed == ()


class TestJoinReorder:
    def test_product_becomes_left_deep_join_chain(self, db):
        query = _logical(
            db, "SELECT o_id FROM orders, customers WHERE cust = c_id"
        )
        join = query.relation
        assert isinstance(join, LogicalJoin)
        assert "join-reorder" in query.applied_rules

    def test_smallest_relation_drives(self, db):
        # customers (5 rows) is smaller than orders (20): it leads the chain
        query = _logical(
            db, "SELECT o_id FROM orders, customers WHERE cust = c_id"
        )
        join = query.relation
        assert isinstance(join.left, LogicalScan)
        assert join.left.binding == "customers"


# -- rule gating through the profile ---------------------------------------


def _db_with_rules(rules):
    database = Database(profile=ArchitectureProfile(rewrite_rules=rules))
    database.execute(
        "CREATE TABLE a (x integer NOT NULL, PRIMARY KEY (x))"
    )
    database.execute("CREATE TABLE b (y integer NOT NULL, PRIMARY KEY (y))")
    for i in range(4):
        database.execute("INSERT INTO a (x) VALUES (?)", [i])
        database.execute("INSERT INTO b (y) VALUES (?)", [i + 2])
    return database


class TestRuleGating:
    def test_disabled_pushdown_leaves_filter_above_scan(self):
        database = _db_with_rules(("join-reorder",))
        query = database._sql_engine.planner.logical_plan(
            _select("SELECT x FROM a WHERE x > 1")
        )
        assert isinstance(query.relation, LogicalFilter)
        assert query.relation.child.pushed == ()
        assert "predicate-pushdown" not in query.applied_rules

    def test_disabled_rules_do_not_change_results(self):
        sql = "SELECT x, y FROM a, b WHERE x = y AND x > 10 - 9 ORDER BY x"
        full = _db_with_rules(
            ("constant-folding", "predicate-pushdown", "join-reorder")
        )
        none = _db_with_rules(())
        assert full.execute(sql).rows == none.execute(sql).rows == [(2, 2), (3, 3)]

    def test_disabled_folding_keeps_expression(self):
        database = _db_with_rules(("predicate-pushdown",))
        query = database._sql_engine.planner.logical_plan(
            _select("SELECT x FROM a WHERE x > 1 + 1")
        )
        conjunct = query.relation.pushed[0]
        assert not isinstance(conjunct.right, ast.Literal)


# -- rewrites preserve results against the seed semantics --------------------


class TestEquivalence:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT o_id, total FROM orders WHERE total BETWEEN 30 AND 90 ORDER BY o_id",
            "SELECT cust, count(*), sum(total) FROM orders GROUP BY cust ORDER BY cust",
            "SELECT o_id FROM orders, customers WHERE cust = c_id AND region = 0 ORDER BY o_id",
            "SELECT o_id FROM orders o LEFT JOIN customers c ON o.cust = c.c_id WHERE c.region IS NULL ORDER BY o_id",
            "SELECT o_id FROM orders WHERE EXISTS (SELECT 1 FROM customers WHERE c_id = cust AND region = 1) ORDER BY o_id",
        ],
    )
    def test_rewritten_and_unrewritten_agree(self, db, sql):
        bare = Database(profile=ArchitectureProfile(rewrite_rules=()))
        bare_engine_sql = [
            "CREATE TABLE orders ("
            " o_id integer NOT NULL, cust integer, total integer,"
            " sb timestamp, se timestamp,"
            " PRIMARY KEY (o_id), PERIOD FOR system_time (sb, se))",
            "CREATE TABLE customers ("
            " c_id integer NOT NULL, region integer, PRIMARY KEY (c_id))",
        ]
        for ddl in bare_engine_sql:
            bare.execute(ddl)
        for i in range(20):
            bare.execute(
                "INSERT INTO orders (o_id, cust, total) VALUES (?, ?, ?)",
                [i, i % 5, i * 10],
            )
        for i in range(5):
            bare.execute(
                "INSERT INTO customers (c_id, region) VALUES (?, ?)", [i, i % 2]
            )
        assert db.execute(sql).rows == bare.execute(sql).rows
