"""Observability layer: tracer spans, metrics registry, sinks, slow-query log."""

import json

import pytest

from repro.engine import Database
from repro.engine.errors import QueryCancelled, QueryTimeout
from repro.engine.obs import (
    COUNTERS,
    HISTOGRAMS,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    SlowQueryLog,
    Tracer,
    render_span_tree,
)
from repro.engine.plan.context import ExecutionContext
from repro.engine.sql import parse_statement


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE n (v integer NOT NULL, PRIMARY KEY (v))")
    for i in range(100):
        database.execute("INSERT INTO n (v) VALUES (?)", [i])
    return database


@pytest.fixture
def traced_db(db):
    """A database with a ring-buffer sink installed (tracing active)."""
    ring = RingBufferSink()
    db.tracer.add_sink(ring)
    return db, ring


# -- metrics registry -------------------------------------------------------


class TestMetricsRegistry:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        registry.inc("txn.commits")
        registry.inc("txn.commits", 2)
        assert registry.counter("txn.commits") == 3

    def test_all_declared_counters_start_at_zero(self):
        registry = MetricsRegistry()
        counters = registry.counters()
        assert set(counters) == set(COUNTERS)
        assert all(v == 0 for v in counters.values())

    def test_undeclared_counter_raises_with_clear_message(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError) as excinfo:
            registry.inc("txn.comits")  # typo
        assert "COUNTERS" in str(excinfo.value)
        assert "txn.comits" in str(excinfo.value)

    def test_undeclared_histogram_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError) as excinfo:
            registry.observe("no.such_histogram", 1.0)
        assert "HISTOGRAMS" in str(excinfo.value)

    def test_nonzero_filter(self):
        registry = MetricsRegistry()
        registry.inc("index.btree_probes")
        assert registry.counters(nonzero=True) == {"index.btree_probes": 1}

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("txn.commits")
        registry.observe("query.execute_s", 0.5)
        registry.reset()
        assert registry.counters(nonzero=True) == {}
        assert registry.histogram("query.execute_s").count == 0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.observe("query.execute_s", 0.25)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "histograms"}
        assert set(snapshot["histograms"]) == set(HISTOGRAMS)
        summary = snapshot["histograms"]["query.execute_s"]
        assert summary["count"] == 1
        assert summary["mean"] == 0.25


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert abs(summary["mean"] - 2.0) < 1e-9

    def test_percentile_interpolates(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.observe(float(v))
        assert abs(hist.percentile(95) - 95.05) < 0.01

    def test_empty_summary_is_none(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["p95"] is None

    def test_reservoir_is_bounded(self):
        hist = Histogram(reservoir=4)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100  # statistics keep counting
        assert hist.percentile(0) == 96.0  # reservoir holds the last 4


# -- tracer ------------------------------------------------------------------


class TestTracer:
    def test_inactive_tracer_is_a_noop(self):
        tracer = Tracer()
        assert tracer.active is False
        assert tracer.start("anything") is None
        null_a = tracer.span("a")
        null_b = tracer.span("b")
        assert null_a is null_b  # shared no-op instance, nothing allocated
        with null_a as span:
            span.set(whatever=1)

    def test_sink_activates_tracing(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink())
        assert tracer.active is True
        tracer.remove_sink(ring)
        assert tracer.active is False

    def test_force_tracing_activates_without_sinks(self):
        tracer = Tracer()
        tracer.force_tracing = True
        assert tracer.active is True
        span = tracer.start("s")
        tracer.finish(span)
        assert span.duration is not None

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink())
        with tracer.span("root"):
            with tracer.span("child1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child2"):
                pass
        (root,) = ring.roots()
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert root.children[0].parent_id == root.span_id

    def test_children_emitted_before_parents(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in ring.spans()] == ["inner", "outer"]

    def test_exception_marks_span_aborted(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = ring.spans()
        assert span.status == "aborted"
        assert span.attrs["aborted"] is True
        assert span.duration is not None

    def test_finish_unwinds_abandoned_descendants(self):
        # an exception that unwinds several frames at once may leave inner
        # spans open; finishing the outer span must close them all
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink())
        outer = tracer.start("outer")
        tracer.start("middle")
        tracer.start("inner")
        tracer.finish(outer, aborted=True)
        spans = {s.name: s for s in ring.spans()}
        assert set(spans) == {"outer", "middle", "inner"}
        assert all(s.duration is not None for s in spans.values())
        assert all(s.status == "aborted" for s in spans.values())

    def test_double_finish_is_ignored(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink())
        span = tracer.start("once")
        tracer.finish(span)
        tracer.finish(span)
        assert len(ring) == 1

    def test_to_dict_recursive(self):
        tracer = Tracer()
        tracer.add_sink(ring := RingBufferSink())
        with tracer.span("root", sql="SELECT 1"):
            with tracer.span("leaf"):
                pass
        payload = ring.roots()[0].to_dict(recursive=True)
        assert payload["name"] == "root"
        assert payload["attrs"] == {"sql": "SELECT 1"}
        assert payload["children"][0]["name"] == "leaf"
        json.dumps(payload)  # JSONL-serialisable as-is

    def test_render_span_tree(self):
        tracer = Tracer()
        tracer.add_sink(ring := RingBufferSink())
        with tracer.span("query", sql="SELECT 1") as span:
            span.set(rows=1)
            with tracer.span("parse"):
                pass
        text = render_span_tree(ring.roots()[0])
        assert "query [sql=SELECT 1, rows=1]" in text
        assert "\n  parse" in text  # indented child
        assert "ms" in text


# -- sinks -------------------------------------------------------------------


class TestSinks:
    def test_ring_buffer_capacity(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink(capacity=2))
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in ring.spans()] == ["b", "c"]
        ring.clear()
        assert len(ring) == 0

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer()
        with JsonlSink(path) as sink:
            tracer.add_sink(sink)
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_id = {r["span_id"]: r for r in records}
        inner = by_id[records[0]["span_id"]]
        assert by_id[inner["parent_id"]]["name"] == "outer"

    def test_jsonl_sink_is_line_atomic_under_concurrency(self, tmp_path):
        # Many sessions may share one sink; every emitted line must parse
        # on its own — whole lines interleave, fragments never do.
        import threading

        path = tmp_path / "concurrent.jsonl"
        per_thread = 50
        with JsonlSink(path) as sink:
            def worker(label):
                tracer = Tracer()
                tracer.add_sink(sink)
                for i in range(per_thread):
                    with tracer.span(f"{label}-{i}", attrs={"payload": "x" * 256}):
                        pass

            threads = [
                threading.Thread(target=worker, args=(f"t{n}",)) for n in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        lines = path.read_text().splitlines()
        assert len(lines) == 8 * per_thread
        names = {json.loads(line)["name"] for line in lines}  # every line parses
        assert len(names) == 8 * per_thread


# -- slow-query log ----------------------------------------------------------


class TestSlowQueryLog:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)

    def test_capacity_bound(self):
        log = SlowQueryLog(0.0, capacity=2)
        for i in range(3):
            log.record({"i": i})
        assert [e["i"] for e in log.entries()] == [1, 2]

    def test_jsonl_append(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(0.0, path=str(path))
        log.record({"sql": "SELECT 1"})
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["sql"] == "SELECT 1"

    def test_database_integration(self, db):
        db.set_slow_query_log(0.0)  # every statement breaches
        assert db.tracer.force_tracing is True
        db.execute("SELECT v FROM n WHERE v < 3")
        (entry,) = db.slow_query_log.entries()
        assert entry["sql"] == "SELECT v FROM n WHERE v < 3"
        assert entry["spans"]["name"] == "query"
        assert any(
            c["name"] == "execute" for c in entry["spans"]["children"]
        )
        assert "Access" in entry["plan"]
        assert db.metrics.counter("slowlog.entries") == 1
        db.set_slow_query_log(None)
        assert db.tracer.force_tracing is False
        assert db.slow_query_log is None

    def test_threshold_filters(self, db):
        db.set_slow_query_log(60.0)  # nothing is that slow
        db.execute("SELECT v FROM n WHERE v < 3")
        assert db.slow_query_log.entries() == []

    def test_max_bytes_rotates_oldest_entries(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(0.0, path=str(path), max_bytes=120)
        for i in range(10):
            log.record({"i": i, "pad": "x" * 30})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) < 10  # oldest entries were dropped
        assert lines[-1]["i"] == 9  # newest always survives
        assert [e["i"] for e in lines] == list(
            range(10 - len(lines), 10)
        )  # contiguous newest suffix: truncation eats from the front
        assert log.truncated == 10 - len(lines)
        assert path.stat().st_size <= 120

    def test_max_bytes_keeps_newest_even_when_oversized(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(0.0, path=str(path), max_bytes=10)
        log.record({"sql": "a" * 50})
        log.record({"sql": "b" * 50})
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["sql"] == "b" * 50

    def test_max_bytes_rejects_non_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SlowQueryLog(0.0, path=str(tmp_path / "s.jsonl"), max_bytes=0)

    def test_max_bytes_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SLOWLOG_MAX_BYTES", "120")
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(0.0, path=str(path))
        assert log.max_bytes == 120
        for i in range(10):
            log.record({"i": i, "pad": "x" * 30})
        assert path.stat().st_size <= 120
        assert log.truncated > 0

    def test_max_bytes_env_non_numeric_ignored(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SLOWLOG_MAX_BYTES", "lots")
        log = SlowQueryLog(0.0, path=str(tmp_path / "s.jsonl"))
        assert log.max_bytes is None

    def test_in_memory_log_ignores_max_bytes(self):
        log = SlowQueryLog(0.0, max_bytes=10)  # no path: nothing to rotate
        for i in range(5):
            log.record({"i": i})
        assert len(log.entries()) == 5
        assert log.truncated == 0

    def test_aborted_query_is_recorded_with_error(self, db):
        db.set_slow_query_log(0.0)
        with pytest.raises(QueryTimeout):
            db.execute("SELECT a.v FROM n a, n b", timeout_s=0)
        (entry,) = db.slow_query_log.entries()
        assert entry["error"] == "QueryTimeout"
        assert entry["spans"]["attrs"]["aborted"] is True

    def test_aborted_entry_feeds_the_folded_stack_walker(self, db):
        # A slow-log span tree from an aborted query must remain a valid
        # profiler input: the walker marks aborted frames with a ``!``.
        from repro.engine.obs.profile import folded_stacks, node_from_dict

        db.set_slow_query_log(0.0)
        with pytest.raises(QueryTimeout):
            db.execute("SELECT a.v FROM n a, n b", timeout_s=0)
        (entry,) = db.slow_query_log.entries()
        root = node_from_dict(entry["spans"])
        stacks = folded_stacks([root])
        assert stacks, "aborted tree produced no folded stacks"
        assert all(stack.startswith("query!") for stack, _ in stacks)
        assert all(count >= 0 for _, count in stacks)


# -- engine tracing ----------------------------------------------------------


class TestEngineTracing:
    def test_lifecycle_spans(self, traced_db):
        db, ring = traced_db
        ring.clear()
        db.execute("SELECT v FROM n WHERE v < 5")
        (root,) = ring.roots()
        assert root.name == "query"
        assert root.attrs["sql"] == "SELECT v FROM n WHERE v < 5"
        assert root.attrs["rows"] == 5
        names = [c.name for c in root.children]
        assert names == [
            "plan_cache.lookup", "parse", "plan.analyze", "plan.rewrite",
            "plan.physical", "execute",
        ]

    def test_cache_hit_skips_planning_spans(self, traced_db):
        db, ring = traced_db
        db.execute("SELECT v FROM n WHERE v < 5")
        ring.clear()
        db.execute("SELECT v FROM n WHERE v < 5")
        (root,) = ring.roots()
        names = [c.name for c in root.children]
        assert names == ["plan_cache.lookup", "execute"]
        assert root.children[0].attrs["outcome"] == "hit"

    def test_operator_spans_under_execute(self, traced_db):
        db, ring = traced_db
        ring.clear()
        db.execute("SELECT count(*) FROM n")
        (root,) = ring.roots()
        execute = next(c for c in root.children if c.name == "execute")
        operators = [s for s in execute.walk() if s.name == "operator"]
        assert operators  # at least the Access leaf
        assert all("op" in s.attrs and "rows" in s.attrs for s in operators)

    def test_phase_durations_sum_within_root(self, traced_db):
        db, ring = traced_db
        ring.clear()
        db.execute("SELECT v FROM n WHERE v < 50")
        (root,) = ring.roots()
        phase_total = sum(c.duration for c in root.children)
        assert 0 < phase_total <= root.duration

    def test_no_spans_without_sinks(self, db):
        assert db.tracer.active is False
        db.execute("SELECT v FROM n WHERE v < 5")
        assert db.tracer._stack == []

    def test_dml_and_ddl_also_traced(self, traced_db):
        db, ring = traced_db
        ring.clear()
        db.execute("INSERT INTO n (v) VALUES (1000)")
        db.execute("UPDATE n SET v = 1001 WHERE v = 1000")
        roots = ring.roots()
        assert [r.name for r in roots] == ["query", "query"]
        assert roots[0].attrs["rows"] == 1  # rowcount


class TestTracingUnderAbort:
    """Satellite: an aborted query still emits a complete span tree."""

    def _assert_complete(self, root):
        for span in root.walk():
            assert span.duration is not None, f"{span.name} left open"
        for child in root.children:
            assert child.parent_id == root.span_id

    def test_timeout_emits_complete_aborted_tree(self, traced_db):
        db, ring = traced_db
        ring.clear()
        with pytest.raises(QueryTimeout):
            db.execute("SELECT a.v FROM n a, n b, n c", timeout_s=0)
        (root,) = ring.roots()
        assert root.name == "query"
        assert root.status == "aborted"
        assert root.attrs["aborted"] is True
        self._assert_complete(root)
        # the execute phase (where the deadline fired) is aborted too
        execute = next(c for c in root.children if c.name == "execute")
        assert execute.attrs.get("aborted") is True

    def test_timeout_on_cached_plan(self, traced_db):
        db, ring = traced_db
        sql = "SELECT a.v FROM n a, n b, n c"
        with pytest.raises(QueryTimeout):
            db.execute(sql, timeout_s=0)
        ring.clear()
        with pytest.raises(QueryTimeout):
            db.execute(sql, timeout_s=0)
        (root,) = ring.roots()
        assert [c.name for c in root.children] == [
            "plan_cache.lookup", "execute",
        ]
        self._assert_complete(root)

    def test_cancelled_operators_emit_aborted_spans(self, db):
        ring = db.tracer.add_sink(RingBufferSink())
        planned = db._sql_engine.planner.plan_select(
            parse_statement("SELECT v FROM n")
        )
        ring.clear()  # drop the planning spans; the abort path is the target
        # let the outermost operator start, then cancel before its child runs
        state = {"polls": 0}

        def cancel_soon():
            state["polls"] += 1
            return state["polls"] > 1

        ctx = ExecutionContext.begin(cancel_check=cancel_soon, tracer=db.tracer)
        with pytest.raises(QueryCancelled):
            planned.rows(ctx)
        assert ring.spans()  # operator spans were recorded, not lost
        assert all(s.duration is not None for s in ring.spans())
        assert any(s.status == "aborted" for s in ring.spans())
        assert db.tracer._stack == []

    def test_parse_error_emits_aborted_root(self, traced_db):
        db, ring = traced_db
        ring.clear()
        with pytest.raises(Exception):
            db.execute("SELECT FROM WHERE")
        (root,) = ring.roots()
        assert root.status == "aborted"
        self._assert_complete(root)


# -- engine metrics ----------------------------------------------------------


class TestEngineMetrics:
    def test_scan_counters(self, db):
        db.metrics.reset()
        db.execute("SELECT v FROM n")
        counters = db.metrics.counters(nonzero=True)
        assert counters["storage.current_scans"] == 1
        assert counters["storage.current_rows_scanned"] >= 100

    def test_plan_cache_counters(self, db):
        db.metrics.reset()
        db.execute("SELECT v FROM n WHERE v = 1")
        db.execute("SELECT v FROM n WHERE v = 1")
        assert db.metrics.counter("plan.cache_miss") == 1
        assert db.metrics.counter("plan.cache_hit") == 1

    def test_version_and_txn_counters(self):
        database = Database()
        database.execute(
            "CREATE TABLE t (a integer, b integer, sb timestamp,"
            " se timestamp, PRIMARY KEY (a),"
            " PERIOD FOR system_time (sb, se))"
        )
        database.metrics.reset()
        database.execute("INSERT INTO t (a, b) VALUES (1, 10)")
        database.execute("UPDATE t SET b = 20 WHERE a = 1")
        counters = database.metrics.counters(nonzero=True)
        assert counters["txn.versions_written"] == 2  # insert + new version
        assert counters["storage.versions_invalidated"] == 1
        assert counters["txn.commits"] == 2

    def test_execute_histogram_observed(self, db):
        db.metrics.reset()
        db.execute("SELECT v FROM n WHERE v < 5")
        hist = db.metrics.histogram("query.execute_s")
        assert hist.count == 1
        assert hist.max > 0

    def test_btree_probe_counter(self):
        # index a non-key column: equality on the primary key would take the
        # pk-probe access path instead of the secondary B+-tree
        database = Database()
        database.execute(
            "CREATE TABLE u (a integer, b integer, PRIMARY KEY (a))"
        )
        for i in range(50):
            database.execute("INSERT INTO u (a, b) VALUES (?, ?)", [i, i * 2])
        database.execute("CREATE INDEX u_b ON u (b)")
        database.metrics.reset()
        database.execute("SELECT a FROM u WHERE b = 42")
        assert database.metrics.counter("index.btree_probes") >= 1

    def test_system_surface(self):
        from repro.systems import make_system

        system = make_system("A")
        system.db.execute("CREATE TABLE t (a integer, PRIMARY KEY (a))")
        system.db.execute("INSERT INTO t (a) VALUES (1)")
        system.reset_metrics()
        system.execute("SELECT a FROM t")
        snapshot = system.metrics()
        assert snapshot["counters"]["storage.current_scans"] == 1
        assert system.tracer is system.db.tracer


class TestCacheHitPathDeltas:
    """Satellite pin: a plan-cache hit must still update the statement
    store and the query.execute_s histogram, while the span tree keeps
    skipping parse/plan.* work."""

    def test_cache_hit_still_updates_telemetry_and_histogram(self, db):
        db.enable_telemetry()
        ring = db.tracer.add_sink(RingBufferSink())
        sql = "SELECT v FROM n WHERE v < 5"
        db.execute(sql)  # miss: parse + plan + execute
        db.metrics.reset()
        ring.clear()
        before = {r["fingerprint"]: dict(r) for r in db.telemetry.snapshot()}
        db.execute(sql)  # hit
        # the span tree proves the hit skipped parse/rewrite work...
        (root,) = ring.roots()
        names = [c.name for c in root.children]
        assert names == ["plan_cache.lookup", "execute"]
        assert root.children[0].attrs["outcome"] == "hit"
        # ...yet the histogram observed the execute phase anyway...
        assert db.metrics.histogram("query.execute_s").count == 1
        assert db.metrics.counter("plan.cache_hit") == 1
        # ...and the statement entry advanced by exactly one hit call
        (after,) = db.telemetry.snapshot()
        prior = before[after["fingerprint"]]
        assert after["calls"] == prior["calls"] + 1
        assert after["cache_hits"] == prior["cache_hits"] + 1
        assert after["cache_misses"] == prior["cache_misses"]
        assert after["time_total_s"] > prior["time_total_s"]
        assert after["rows_scanned"] > prior["rows_scanned"]

    def test_telemetry_without_tracing_keeps_histogram_updates(self, db):
        db.enable_telemetry()
        assert db.tracer.active is False
        sql = "SELECT count(*) FROM n"
        db.execute(sql)
        db.metrics.reset()
        db.execute(sql)  # cache hit, no tracer
        assert db.metrics.histogram("query.execute_s").count == 1
        (row,) = [
            r for r in db.telemetry.snapshot() if "count" in r["query"]
        ]
        assert row["calls"] == 2
        assert row["cache_hits"] == 1
