"""Parameter sampler tests."""

from repro.bench.service import BenchmarkService
from repro.core.queries import Workload
from repro.core.queries.params import ParameterSampler, spread_measure

WORKLOAD = Workload()


def test_sys_ticks_spread(tiny_workload):
    sampler = ParameterSampler(tiny_workload.meta)
    ticks = sampler.sys_ticks(5)
    assert len(ticks) == 5
    assert ticks[0] == tiny_workload.meta.initial_tick
    assert ticks[-1] == tiny_workload.meta.last_tick
    assert ticks == sorted(ticks)


def test_single_point_is_mid(tiny_workload):
    sampler = ParameterSampler(tiny_workload.meta)
    assert sampler.sys_ticks(1) == [tiny_workload.meta.mid_tick()]
    assert sampler.app_days(1) == [tiny_workload.meta.mid_day()]


def test_deterministic_across_instances(tiny_workload):
    a = ParameterSampler(tiny_workload.meta, seed=5)
    b = ParameterSampler(tiny_workload.meta, seed=5)
    assert [a.random_sys_tick() for _ in range(5)] == [
        b.random_sys_tick() for _ in range(5)
    ]


def test_customer_keys_start_with_hottest(tiny_workload):
    sampler = ParameterSampler(tiny_workload.meta)
    keys = sampler.customer_keys(4)
    assert keys[0] == tiny_workload.meta.hottest_customer
    assert len(set(keys)) == 4


def test_variations_sweep_time(tiny_workload):
    sampler = ParameterSampler(tiny_workload.meta)
    query = WORKLOAD.query("T2.sys")
    variations = list(sampler.variations(query, 3))
    assert len(variations) == 3
    points = [v["sys_point"] for v in variations]
    assert points[0] < points[-1]
    # non-swept parameters keep their binding
    for v in variations:
        assert "app_point" in v


def test_spread_measure_runs(tiny_workload, loaded_system_a):
    service = BenchmarkService(repetitions=2, discard=1)
    cells = spread_measure(
        service, loaded_system_a, WORKLOAD.query("T2.sys"),
        tiny_workload.meta, count=3,
    )
    assert len(cells) == 3
    assert all(cell.median < float("inf") for cell in cells)
    assert cells[0].qid.endswith("#0")
