"""Parser tests: statements, temporal clauses, DDL, error reporting."""

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.sql import ast, parse_statement


class TestSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.from_items[0].name == "t"

    def test_star_and_qualified_star(self):
        stmt = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.table == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_items[0].alias == "u"

    def test_where_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT a, count(*) FROM t WHERE a > 1 GROUP BY a "
            "HAVING count(*) > 2 ORDER BY a DESC LIMIT 5 OFFSET 2"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert not stmt.order_by[0].ascending
        assert stmt.limit.value == 5
        assert stmt.offset.value == 2

    def test_joins(self):
        stmt = parse_statement(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        join = stmt.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "left"
        assert join.left.kind == "inner"

    def test_derived_table(self):
        stmt = parse_statement("SELECT z FROM (SELECT a AS z FROM t) sub")
        derived = stmt.from_items[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "sub"

    def test_union_with_hoisted_order(self):
        stmt = parse_statement(
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 3"
        )
        assert stmt.set_op is not None
        op, rhs, all_flag = stmt.set_op
        assert all_flag
        assert rhs.order_by == [] and rhs.limit is None
        assert stmt.order_by and stmt.limit is not None

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct


class TestTemporalClauses:
    def test_system_time_as_of(self):
        stmt = parse_statement("SELECT 1 FROM t FOR SYSTEM_TIME AS OF 42")
        clause = stmt.from_items[0].temporal[0]
        assert clause.period == "system_time"
        assert clause.mode == "as_of"

    def test_from_to_and_between(self):
        stmt = parse_statement(
            "SELECT 1 FROM t FOR SYSTEM_TIME FROM 1 TO 5 "
            "FOR BUSINESS_TIME BETWEEN 2 AND 9"
        )
        modes = [c.mode for c in stmt.from_items[0].temporal]
        assert modes == ["from_to", "between"]

    def test_all(self):
        stmt = parse_statement("SELECT 1 FROM t FOR SYSTEM_TIME ALL")
        assert stmt.from_items[0].temporal[0].mode == "all"

    def test_named_period(self):
        stmt = parse_statement("SELECT 1 FROM orders FOR active_time AS OF 7")
        assert stmt.from_items[0].temporal[0].period == "active_time"

    def test_clause_after_alias(self):
        stmt = parse_statement("SELECT 1 FROM t x FOR SYSTEM_TIME AS OF 42")
        ref = stmt.from_items[0]
        assert ref.alias == "x"
        assert ref.temporal[0].mode == "as_of"


class TestExpressions:
    def _expr(self, text):
        return parse_statement(f"SELECT {text}").items[0].expr

    def test_precedence(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_and_or_not(self):
        expr = self._expr("a = 1 OR NOT b = 2 AND c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_between_like_in(self):
        assert isinstance(self._expr("a BETWEEN 1 AND 2"), ast.Between)
        assert isinstance(self._expr("a NOT LIKE 'x%'"), ast.Like)
        in_list = self._expr("a IN (1, 2, 3)")
        assert isinstance(in_list, ast.InList) and len(in_list.items) == 3

    def test_is_null(self):
        expr = self._expr("a IS NOT NULL")
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_case(self):
        expr = self._expr("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case)
        assert expr.default is not None

    def test_date_literal_and_interval(self):
        expr = self._expr("date '1994-01-01' + interval '3' month")
        assert expr.op == "+"
        assert isinstance(expr.right, ast.IntervalLiteral)
        assert expr.right.unit == "month"

    def test_extract_and_substring(self):
        expr = self._expr("extract(year FROM d)")
        assert expr.name == "extract"
        expr = self._expr("substring(p FROM 1 FOR 2)")
        assert expr.name == "substring" and len(expr.args) == 3

    def test_aggregates(self):
        expr = self._expr("count(DISTINCT x)")
        assert isinstance(expr, ast.Aggregate) and expr.distinct
        star = self._expr("count(*)")
        assert star.arg is None

    def test_exists_and_subqueries(self):
        expr = self._expr("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)
        expr = self._expr("a IN (SELECT b FROM t)")
        assert isinstance(expr, ast.InSubquery)
        expr = self._expr("(SELECT max(b) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_params(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = :named")
        refs = list(ast.walk_expr(stmt.where))
        params = [r for r in refs if isinstance(r, ast.Param)]
        assert params[0].index == 0
        assert params[1].name == "named"

    def test_concat(self):
        expr = self._expr("'a' || 'b'")
        assert expr.op == "||"


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t (a) SELECT b FROM u")
        assert stmt.select is not None

    def test_update_with_portion(self):
        stmt = parse_statement(
            "UPDATE t FOR PORTION OF business_time FROM 1 TO 9 "
            "SET v = 5 WHERE id = 3"
        )
        assert stmt.portion.period == "business_time"
        assert stmt.assignments[0][0] == "v"

    def test_delete_with_portion(self):
        stmt = parse_statement(
            "DELETE FROM t FOR PORTION OF app FROM 1 TO 9 WHERE id = 3"
        )
        assert stmt.portion.period == "app"


class TestDdl:
    def test_create_table_full(self):
        stmt = parse_statement(
            "CREATE TABLE t (id integer NOT NULL, v varchar(10),"
            " ab date, ae date, sb timestamp, se timestamp,"
            " PRIMARY KEY (id),"
            " PERIOD FOR business_time (ab, ae),"
            " PERIOD FOR system_time (sb, se))"
        )
        assert stmt.primary_key == ["id"]
        assert [p.name for p in stmt.periods] == ["business_time", "system_time"]
        assert stmt.columns[0].nullable is False

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX i ON t (a, b) USING hash")
        assert stmt.kind == "hash"
        stmt = parse_statement("CREATE INDEX i ON t (a) USING rtree ON history")
        assert stmt.partition == "history"

    def test_drop(self):
        assert parse_statement("DROP TABLE t").name == "t"
        assert parse_statement("DROP INDEX i").name == "i"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM t",
        "SELECT 1 FROM",
        "FROB x",
        "SELECT 1 FROM t WHERE",
        "SELECT 1 extra_tokens_after_alias 2",
        "CREATE TABLE t (a zigzag)",
        "SELECT 1 FROM t FOR SYSTEM_TIME NEAR 5",
        "SELECT CASE END",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_statement(bad)

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_statement("SELECT 1 FROM t WHERE AND")
        assert excinfo.value.position is not None
