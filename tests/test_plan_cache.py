"""Plan cache: LRU eviction and version-based invalidation.

Regression tests for the two pathologies of the original cache:
clear-all on overflow, and clear-all on *any* DDL.
"""

import pytest

from repro.engine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (a integer NOT NULL, b integer,"
        " sb timestamp, se timestamp,"
        " PRIMARY KEY (a), PERIOD FOR system_time (sb, se))"
    )
    for i in range(10):
        database.execute("INSERT INTO t (a, b) VALUES (?, ?)", [i, i * i])
    return database


def engine(db):
    return db._sql_engine


class TestPlanReuse:
    def test_repeat_query_hits_cache(self, db):
        db.execute("SELECT a FROM t")
        before = engine(db).cache_hits
        db.execute("SELECT a FROM t")
        assert engine(db).cache_hits == before + 1

    def test_cached_plan_reruns_with_new_params(self, db):
        assert db.execute("SELECT a FROM t WHERE a = ?", [3]).rows == [(3,)]
        assert db.execute("SELECT a FROM t WHERE a = ?", [7]).rows == [(7,)]
        assert engine(db).cache_hits >= 1

    def test_plans_record_dependencies(self, db):
        db.execute("SELECT a FROM t")
        planned = engine(db)._plan_cache["SELECT a FROM t"]
        assert "t" in planned.dependencies

    def test_subquery_dependencies_are_recorded(self, db):
        db.execute("CREATE TABLE s (x integer NOT NULL, PRIMARY KEY (x))")
        sql = "SELECT a FROM t WHERE a IN (SELECT x FROM s)"
        db.execute(sql)
        planned = engine(db)._plan_cache[sql]
        assert {"t", "s"} <= set(planned.dependencies)


class TestLruEviction:
    def test_overflow_evicts_one_entry_not_all(self, db):
        eng = engine(db)
        eng.plan_cache_limit = 4
        statements = [f"SELECT a FROM t WHERE a = {i}" for i in range(4)]
        for sql in statements:
            db.execute(sql)
        assert len(eng._plan_cache) == 4
        db.execute("SELECT a FROM t WHERE a = 99")
        # only the least recently used entry fell out
        assert len(eng._plan_cache) == 4
        assert statements[0] not in eng._plan_cache
        assert all(sql in eng._plan_cache for sql in statements[1:])

    def test_recently_used_entry_survives_overflow(self, db):
        eng = engine(db)
        eng.plan_cache_limit = 2
        db.execute("SELECT a FROM t")            # oldest...
        db.execute("SELECT b FROM t")
        db.execute("SELECT a FROM t")            # ...but touched again
        db.execute("SELECT a, b FROM t")         # evicts "SELECT b FROM t"
        assert "SELECT a FROM t" in eng._plan_cache
        assert "SELECT b FROM t" not in eng._plan_cache


class TestDdlInvalidation:
    def test_unrelated_ddl_keeps_plan_cached(self, db):
        db.execute("SELECT a FROM t")
        db.execute("CREATE TABLE other (x integer NOT NULL, PRIMARY KEY (x))")
        before = engine(db).cache_hits
        db.execute("SELECT a FROM t")
        assert engine(db).cache_hits == before + 1
        assert engine(db).cache_invalidations == 0

    def test_index_on_referenced_table_invalidates(self, db):
        db.execute("SELECT a FROM t WHERE b = 4")
        db.execute("CREATE INDEX i_b ON t (b)")
        before = engine(db).cache_invalidations
        # replans (and may now use the index); the stale plan is dropped
        assert db.execute("SELECT a FROM t WHERE b = 4").rows == [(2,)]
        assert engine(db).cache_invalidations == before + 1

    def test_drop_recreate_serves_no_stale_rows(self, db):
        db.execute("CREATE TABLE r (x integer NOT NULL, PRIMARY KEY (x))")
        db.execute("INSERT INTO r (x) VALUES (1)")
        assert db.execute("SELECT x FROM r").rows == [(1,)]
        db.execute("DROP TABLE r")
        db.execute("CREATE TABLE r (x integer NOT NULL, PRIMARY KEY (x))")
        db.execute("INSERT INTO r (x) VALUES (2)")
        assert db.execute("SELECT x FROM r").rows == [(2,)]

    def test_view_ddl_invalidates_plans_on_view(self, db):
        db.execute("CREATE VIEW small AS SELECT a FROM t WHERE a < 3")
        assert len(db.execute("SELECT a FROM small").rows) == 3
        db.execute("DROP VIEW small")
        db.execute("CREATE VIEW small AS SELECT a FROM t WHERE a < 5")
        assert len(db.execute("SELECT a FROM small").rows) == 5

    def test_ddl_on_one_table_keeps_other_tables_plans(self, db):
        db.execute("CREATE TABLE s (x integer NOT NULL, PRIMARY KEY (x))")
        db.execute("SELECT a FROM t")
        db.execute("SELECT x FROM s")
        db.execute("CREATE INDEX i_b2 ON t (b)")
        before_hits = engine(db).cache_hits
        db.execute("SELECT x FROM s")  # plan over s untouched by DDL on t
        assert engine(db).cache_hits == before_hits + 1
