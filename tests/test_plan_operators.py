"""Direct tests of the physical operators (incl. ones the planner uses
rarely, like MergeJoin)."""

from repro.engine.expr import Env
from repro.engine.plan import operators as ops


def _env():
    return Env({})


def col(i):
    return lambda row, env: row[i]


def rows_of(op):
    return op.rows(_env())


class TestJoins:
    LEFT = [(1, "a"), (2, "b"), (2, "bb"), (None, "n")]
    RIGHT = [(1, "x"), (2, "y"), (3, "z"), (None, "nn")]

    def test_hash_join_inner(self):
        op = ops.HashJoin(
            ops.Materialized(self.LEFT), ops.Materialized(self.RIGHT),
            [col(0)], [col(0)],
        )
        got = sorted(rows_of(op))
        assert got == [(1, "a", 1, "x"), (2, "b", 2, "y"), (2, "bb", 2, "y")]

    def test_hash_join_null_keys_never_match(self):
        op = ops.HashJoin(
            ops.Materialized([(None,)]), ops.Materialized([(None,)]),
            [col(0)], [col(0)],
        )
        assert rows_of(op) == []

    def test_hash_join_left_pads(self):
        op = ops.HashJoin(
            ops.Materialized(self.LEFT), ops.Materialized(self.RIGHT),
            [col(0)], [col(0)], kind="left", right_width=2,
        )
        got = rows_of(op)
        assert (None, "n", None, None) in got
        assert len(got) == 4

    def test_hash_join_residual(self):
        residual = lambda row, env: row[3] != "y"
        op = ops.HashJoin(
            ops.Materialized(self.LEFT), ops.Materialized(self.RIGHT),
            [col(0)], [col(0)], residual=residual,
        )
        assert rows_of(op) == [(1, "a", 1, "x")]

    def test_merge_join_matches_hash_join(self):
        merge = ops.MergeJoin(
            ops.Materialized(self.LEFT), ops.Materialized(self.RIGHT),
            col(0), col(0),
        )
        hashj = ops.HashJoin(
            ops.Materialized(self.LEFT), ops.Materialized(self.RIGHT),
            [col(0)], [col(0)],
        )
        assert sorted(rows_of(merge)) == sorted(rows_of(hashj))

    def test_merge_join_duplicate_runs(self):
        left = [(1,), (1,), (2,)]
        right = [(1,), (1,), (1,)]
        op = ops.MergeJoin(
            ops.Materialized(left), ops.Materialized(right), col(0), col(0)
        )
        assert len(rows_of(op)) == 6

    def test_nested_loop_left(self):
        predicate = lambda row, env: row[0] == row[1]
        op = ops.NestedLoopJoin(
            ops.Materialized([(1,), (9,)]), ops.Materialized([(1,), (2,)]),
            predicate, kind="left", right_width=1,
        )
        assert sorted(rows_of(op), key=str) == [(1, 1), (9, None)]

    def test_cross_join(self):
        op = ops.CrossJoin(ops.Materialized([(1,), (2,)]), ops.Materialized([(3,)]))
        assert rows_of(op) == [(1, 3), (2, 3)]


class TestAggregateOperator:
    def test_grouped(self):
        data = [(1, 10.0), (1, 20.0), (2, 5.0)]
        op = ops.Aggregate(
            ops.Materialized(data),
            [col(0)],
            [("count", None, False), ("sum", col(1), False), ("avg", col(1), False)],
        )
        got = sorted(rows_of(op))
        assert got == [(1, 2, 30.0, 15.0), (2, 1, 5.0, 5.0)]

    def test_distinct_aggregate(self):
        data = [(1, 5.0), (1, 5.0), (1, 7.0)]
        op = ops.Aggregate(
            ops.Materialized(data), [col(0)],
            [("count", col(1), True), ("sum", col(1), True)],
        )
        assert rows_of(op) == [(1, 2, 12.0)]

    def test_global_on_empty(self):
        op = ops.Aggregate(
            ops.Materialized([]), [],
            [("count", None, False), ("min", col(0), False)],
            global_agg=True,
        )
        assert rows_of(op) == [(0, None)]

    def test_min_max(self):
        data = [(3,), (1,), (2,)]
        op = ops.Aggregate(
            ops.Materialized(data), [],
            [("min", col(0), False), ("max", col(0), False)],
            global_agg=True,
        )
        assert rows_of(op) == [(1, 3)]


class TestShapingOperators:
    def test_sort_multi_key_stability(self):
        data = [(1, "b"), (2, "a"), (1, "a")]
        op = ops.Sort(
            ops.Materialized(data),
            [col(0), col(1)],
            [False, False],
        )
        assert rows_of(op) == [(1, "a"), (1, "b"), (2, "a")]

    def test_sort_descending_with_nulls(self):
        data = [(2,), (None,), (5,)]
        op = ops.Sort(ops.Materialized(data), [col(0)], [True])
        assert rows_of(op) == [(None,), (5,), (2,)]

    def test_limit_offset(self):
        op = ops.Limit(
            ops.Materialized([(i,) for i in range(10)]),
            lambda row, env: 3,
            lambda row, env: 2,
        )
        assert rows_of(op) == [(2,), (3,), (4,)]

    def test_distinct(self):
        op = ops.Distinct(ops.Materialized([(1,), (1,), (2,)]))
        assert rows_of(op) == [(1,), (2,)]

    def test_union_modes(self):
        left = ops.Materialized([(1,), (2,)])
        right = ops.Materialized([(2,), (3,)])
        assert sorted(rows_of(ops.Union(left, right))) == [(1,), (2,), (3,)]
        assert len(rows_of(ops.Union(left, right, all_rows=True))) == 4

    def test_filter(self):
        op = ops.Filter(
            ops.Materialized([(1,), (2,), (3,)]),
            lambda row, env: row[0] > 1,
        )
        assert rows_of(op) == [(2,), (3,)]

    def test_project(self):
        op = ops.Project(
            ops.Materialized([(1, 2)]),
            [col(1), lambda row, env: row[0] * 10],
        )
        assert rows_of(op) == [(2, 10)]


class TestExplainTree:
    def test_nested_explain(self):
        op = ops.Filter(
            ops.Union(ops.Materialized([], "L"), ops.Materialized([], "R")),
            lambda r, e: True,
            "Filter(test)",
        )
        text = op.explain()
        assert "Filter(test)" in text
        assert "Union" in text
        assert text.count("\n") >= 2  # indented children
