"""SELECT execution: joins, aggregation, subqueries, ordering, set ops."""

import pytest

from repro.engine import Database
from repro.engine.errors import ProgrammingError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer, b integer, c varchar(10))")
    for a, b, c in [(1, 10, "x"), (2, 20, "y"), (3, 30, "x"), (4, None, "z")]:
        database.execute("INSERT INTO t (a, b, c) VALUES (?, ?, ?)", [a, b, c])
    database.execute("CREATE TABLE u (a integer, d varchar(10))")
    for a, d in [(1, "one"), (2, "two"), (9, "nine")]:
        database.execute("INSERT INTO u (a, d) VALUES (?, ?)", [a, d])
    return database


class TestBasics:
    def test_projection_and_alias(self, db):
        result = db.execute("SELECT a * 2 AS dbl FROM t ORDER BY a")
        assert result.columns == ["dbl"]
        assert [r[0] for r in result.rows] == [2, 4, 6, 8]

    def test_star(self, db):
        result = db.execute("SELECT * FROM t WHERE a = 1")
        assert result.rows == [(1, 10, "x")]

    def test_where_null_filtered(self, db):
        result = db.execute("SELECT a FROM t WHERE b > 15")
        assert sorted(r[0] for r in result.rows) == [2, 3]  # NULL row excluded

    def test_order_by_column_position_and_desc(self, db):
        by_name = db.execute("SELECT a, b FROM t ORDER BY b DESC")
        by_pos = db.execute("SELECT a, b FROM t ORDER BY 2 DESC")
        assert by_name.rows == by_pos.rows
        # DESC puts NULLs first (PostgreSQL default: NULLS FIRST on DESC)
        assert by_name.rows[0][1] is None

    def test_order_by_expression_not_in_output(self, db):
        result = db.execute("SELECT a FROM t ORDER BY b * -1")
        # b DESC via expression; NULL (row 4) last
        assert [r[0] for r in result.rows] == [3, 2, 1, 4]

    def test_limit_offset(self, db):
        result = db.execute("SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1")
        assert [r[0] for r in result.rows] == [2, 3]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT c FROM t ORDER BY c")
        assert [r[0] for r in result.rows] == ["x", "y", "z"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 1").scalar() == 2


class TestJoins:
    def test_comma_join_with_equi_predicate(self, db):
        result = db.execute(
            "SELECT t.a, u.d FROM t, u WHERE t.a = u.a ORDER BY t.a"
        )
        assert result.rows == [(1, "one"), (2, "two")]

    def test_explicit_inner_join(self, db):
        result = db.execute(
            "SELECT t.a, u.d FROM t JOIN u ON t.a = u.a ORDER BY t.a"
        )
        assert len(result.rows) == 2

    def test_left_join_pads_nulls(self, db):
        result = db.execute(
            "SELECT t.a, u.d FROM t LEFT JOIN u ON t.a = u.a ORDER BY t.a"
        )
        assert result.rows == [
            (1, "one"), (2, "two"), (3, None), (4, None)
        ]

    def test_left_join_with_extra_on_condition(self, db):
        result = db.execute(
            "SELECT t.a, u.d FROM t LEFT JOIN u ON t.a = u.a AND u.d LIKE 'o%'"
            " ORDER BY t.a"
        )
        assert result.rows[0] == (1, "one")
        assert result.rows[1] == (2, None)

    def test_cross_join(self, db):
        result = db.execute("SELECT count(*) FROM t CROSS JOIN u")
        assert result.scalar() == 12

    def test_non_equi_join(self, db):
        result = db.execute(
            "SELECT count(*) FROM t, u WHERE t.a < u.a"
        )
        # t.a=1 pairs with u.a in {2,9}; t.a in {2,3,4} pair with u.a=9
        assert result.scalar() == 5

    def test_self_join_aliases(self, db):
        result = db.execute(
            "SELECT x.a, y.a FROM t x, t y WHERE x.a + 1 = y.a ORDER BY x.a"
        )
        assert result.rows == [(1, 2), (2, 3), (3, 4)]


class TestAggregation:
    def test_global_aggregates(self, db):
        result = db.execute("SELECT count(*), count(b), sum(b), avg(b), min(b), max(b) FROM t")
        assert result.rows == [(4, 3, 60, 20.0, 10, 30)]

    def test_empty_input_global(self, db):
        result = db.execute("SELECT count(*), sum(b) FROM t WHERE a > 99")
        assert result.rows == [(0, None)]

    def test_group_by(self, db):
        result = db.execute(
            "SELECT c, count(*), sum(b) FROM t GROUP BY c ORDER BY c"
        )
        assert result.rows == [("x", 2, 40), ("y", 1, 20), ("z", 1, None)]

    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT a % 2, count(*) FROM t GROUP BY a % 2 ORDER BY 1"
        )
        assert result.rows == [(0, 2), (1, 2)]

    def test_having(self, db):
        result = db.execute(
            "SELECT c, count(*) FROM t GROUP BY c HAVING count(*) > 1"
        )
        assert result.rows == [("x", 2)]

    def test_having_references_unprojected_aggregate(self, db):
        result = db.execute(
            "SELECT c FROM t GROUP BY c HAVING sum(b) >= 40"
        )
        assert result.rows == [("x",)]

    def test_count_distinct(self, db):
        assert db.execute("SELECT count(DISTINCT c) FROM t").scalar() == 3

    def test_order_by_aggregate_alias(self, db):
        result = db.execute(
            "SELECT c, count(*) AS n FROM t GROUP BY c ORDER BY n DESC, c"
        )
        assert result.rows[0] == ("x", 2)

    def test_aggregate_of_expression(self, db):
        assert db.execute("SELECT sum(b * 2) FROM t").scalar() == 120


class TestSubqueries:
    def test_scalar_subquery(self, db):
        result = db.execute("SELECT a FROM t WHERE b = (SELECT max(b) FROM t)")
        assert result.rows == [(3,)]

    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT a FROM t WHERE a IN (SELECT a FROM u) ORDER BY a"
        )
        assert [r[0] for r in result.rows] == [1, 2]

    def test_not_in_subquery(self, db):
        result = db.execute(
            "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u) ORDER BY a"
        )
        assert [r[0] for r in result.rows] == [3, 4]

    def test_correlated_exists(self, db):
        result = db.execute(
            "SELECT a FROM t WHERE EXISTS "
            "(SELECT 1 FROM u WHERE u.a = t.a AND u.d LIKE '%e') ORDER BY a"
        )
        assert [r[0] for r in result.rows] == [1]

    def test_correlated_scalar(self, db):
        result = db.execute(
            "SELECT t.a, (SELECT u.d FROM u WHERE u.a = t.a) FROM t ORDER BY t.a"
        )
        assert result.rows == [(1, "one"), (2, "two"), (3, None), (4, None)]

    def test_derived_table(self, db):
        result = db.execute(
            "SELECT big.c, big.n FROM "
            "(SELECT c, count(*) AS n FROM t GROUP BY c) big "
            "WHERE big.n > 1"
        )
        assert result.rows == [("x", 2)]

    def test_scalar_subquery_multiple_rows_errors(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("SELECT (SELECT a FROM t)")


class TestSetOps:
    def test_union_dedupes(self, db):
        result = db.execute("SELECT c FROM t UNION SELECT d FROM u ORDER BY 1")
        assert [r[0] for r in result.rows] == ["nine", "one", "two", "x", "y", "z"]

    def test_union_all_keeps_duplicates(self, db):
        result = db.execute("SELECT c FROM t UNION ALL SELECT c FROM t")
        assert len(result.rows) == 8

    def test_union_with_limit(self, db):
        result = db.execute(
            "SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY 1 LIMIT 3"
        )
        assert [r[0] for r in result.rows] == [1, 1, 2]
