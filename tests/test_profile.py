"""Span-tree profiler: folded stacks, flamegraph SVG, operator table."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.engine.obs.profile import (
    SpanNode,
    folded_stacks,
    format_folded,
    format_operator_table,
    load_jsonl,
    nodes_from_flat,
    operator_table,
    render_flamegraph_svg,
)


def query_tree():
    """A deterministic query-shaped tree: 1 ms total, 0.1 ms untracked."""
    return SpanNode("query", 0.001, children=[
        SpanNode("parse", 0.0002),
        SpanNode("execute", 0.0007, children=[
            SpanNode("operator", 0.0005, attrs={"op": "SeqScan(item)", "rows": 10}),
        ]),
    ])


class TestSpanNode:
    def test_self_time_subtracts_children(self):
        root = query_tree()
        assert root.self_time == pytest.approx(0.0001)
        assert root.children[1].self_time == pytest.approx(0.0002)

    def test_self_time_clamps_at_zero(self):
        node = SpanNode("x", 0.001, children=[SpanNode("y", 0.005)])
        assert node.self_time == 0.0

    def test_operator_frame_uses_op_label(self):
        node = SpanNode("operator", 0.001, attrs={"op": "IndexProbe(i_ab)"})
        assert node.frame == "IndexProbe(i_ab)"

    def test_aborted_frame_is_marked(self):
        node = SpanNode("query", 0.001, status="aborted")
        assert node.frame == "query!"


class TestFoldedStacks:
    def test_values_are_self_time_and_sum_to_root(self):
        stacks = dict(folded_stacks([query_tree()]))
        assert stacks == {
            "query": 100,
            "query;parse": 200,
            "query;execute": 200,
            "query;execute;SeqScan(item)": 500,
        }
        assert sum(stacks.values()) == 1000  # the root's 1 ms, nothing doubled

    def test_format_folded_lines(self):
        lines = format_folded([query_tree()]).splitlines()
        assert "query;execute;SeqScan(item) 500" in lines

    def test_zero_self_interior_frames_are_omitted(self):
        # a wrapper fully covered by its child contributes no line...
        root = SpanNode("query", 0.001, children=[SpanNode("execute", 0.001)])
        assert dict(folded_stacks([root])) == {"query;execute": 1000}
        # ...but a zero-duration *leaf* still appears (it documents the call)
        assert ("a;b", 0) in folded_stacks(
            [SpanNode("a", 0.0, children=[SpanNode("b", 0.0)])]
        )


class TestForestRebuild:
    def flat_records(self):
        return [
            {"span_id": 2, "parent_id": 1, "name": "parse", "duration_s": 0.0002},
            {"span_id": 3, "parent_id": 1, "name": "execute", "duration_s": 0.0007},
            {"span_id": 1, "parent_id": None, "name": "query", "duration_s": 0.001},
        ]

    def test_nodes_from_flat_attaches_by_parent_id(self):
        (root,) = nodes_from_flat(self.flat_records())
        assert root.name == "query"
        assert [c.name for c in root.children] == ["parse", "execute"]

    def test_orphans_become_roots(self):
        records = self.flat_records()[:2]  # parent line missing
        roots = nodes_from_flat(records)
        assert sorted(r.name for r in roots) == ["execute", "parse"]

    def test_load_jsonl_handles_both_line_shapes(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        slowlog_entry = {
            "sql": "SELECT 1",
            "spans": {"name": "query", "duration_s": 0.002,
                      "children": [{"name": "execute", "duration_s": 0.001}]},
        }
        with open(path, "w") as fh:
            for record in self.flat_records():
                fh.write(json.dumps(record) + "\n")
            fh.write(json.dumps(slowlog_entry) + "\n")
        roots = load_jsonl(path)
        assert sorted(r.name for r in roots) == ["query", "query"]
        assert sum(len(list(r.walk())) for r in roots) == 5


class TestFlamegraphSvg:
    def test_valid_svg_with_tiling_widths(self):
        svg = render_flamegraph_svg([query_tree()], width=1000)
        root = ET.fromstring(svg)  # well-formed XML
        ns = "{http://www.w3.org/2000/svg}"
        rects = [
            r for r in root.iter(f"{ns}rect") if r.get("data-name") is not None
        ]
        by_depth = {}
        for rect in rects:
            by_depth.setdefault(int(rect.get("data-depth")), []).append(rect)
        (root_rect,) = by_depth[0]
        root_width = float(root_rect.get("width"))
        assert root_width == pytest.approx(1000.0)
        # acceptance: per-phase widths at depth 1 sum to the root width
        phase_sum = sum(float(r.get("width")) for r in by_depth[1])
        assert phase_sum == pytest.approx(root_width * 0.9)  # 0.1 ms untracked
        names = {r.get("data-name") for r in rects}
        assert {"query", "parse", "execute", "SeqScan(item)"} <= names

    def test_phase_widths_sum_exactly_when_fully_covered(self):
        root = SpanNode("query", 0.001, children=[
            SpanNode("parse", 0.0004), SpanNode("execute", 0.0006),
        ])
        svg = render_flamegraph_svg([root], width=800)
        tree = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        widths = [
            float(r.get("width"))
            for r in tree.iter(f"{ns}rect")
            if r.get("data-depth") == "1"
        ]
        assert sum(widths) == pytest.approx(800.0)

    def test_aborted_spans_are_flagged(self):
        root = SpanNode("query", 0.001, status="aborted")
        svg = render_flamegraph_svg([root])
        assert 'data-name="query!"' in svg
        assert "#9e2a2b" in svg

    def test_no_spans_raises(self):
        with pytest.raises(ValueError):
            render_flamegraph_svg([])
        with pytest.raises(ValueError):
            render_flamegraph_svg([SpanNode("empty", 0.0)])

    def test_title_is_escaped(self):
        svg = render_flamegraph_svg([query_tree()], title="a<b>&c")
        assert "a&lt;b&gt;&amp;c" in svg


class TestOperatorTable:
    def forest(self):
        lookup_hit = SpanNode("plan_cache.lookup", 0.00001, attrs={"outcome": "hit"})
        lookup_miss = SpanNode("plan_cache.lookup", 0.00001, attrs={"outcome": "miss"})
        scan = SpanNode("operator", 0.0005, attrs={"op": "SeqScan(item)", "rows": 10})
        probe = SpanNode("operator", 0.0002, attrs={"op": "IndexProbe(i)", "rows": 2})
        q1 = SpanNode("query", 0.001, children=[lookup_miss, scan])
        q2 = SpanNode("query", 0.0004, children=[lookup_hit, probe])
        return [q1, q2]

    def test_aggregation(self):
        table = operator_table(self.forest())
        scan = table["operators"]["SeqScan(item)"]
        assert scan["calls"] == 1
        assert scan["rows"] == 10
        assert scan["total_s"] == pytest.approx(0.0005)
        assert table["cache"] == {"hits": 1, "misses": 1}

    def test_nested_operator_self_time(self):
        inner = SpanNode("operator", 0.0003, attrs={"op": "SeqScan(t)"})
        outer = SpanNode(
            "operator", 0.0008, attrs={"op": "NLJoin"}, children=[inner]
        )
        table = operator_table([SpanNode("query", 0.001, children=[outer])])
        assert table["operators"]["NLJoin"]["self_s"] == pytest.approx(0.0005)
        assert table["operators"]["NLJoin"]["total_s"] == pytest.approx(0.0008)

    def test_render_sorts_by_self_time(self):
        text = format_operator_table(operator_table(self.forest()))
        assert text.index("SeqScan(item)") < text.index("IndexProbe(i)")
        assert "plan cache: 1/2 lookups hit (50.0%)" in text

    def test_render_empty(self):
        text = format_operator_table(operator_table([]))
        assert "no operator spans" in text


class TestLiveEngineProfile:
    def test_traced_workload_round_trips(self, db):
        from repro.engine.obs import RingBufferSink

        sink = db.tracer.add_sink(RingBufferSink())
        db.execute("SELECT id FROM item WHERE id < 3")
        roots = sink.roots()
        assert roots, "tracing produced no root spans"
        stacks = folded_stacks(roots)
        assert any(stack.startswith("query;execute") for stack, _ in stacks)
        svg = render_flamegraph_svg(roots)
        ET.fromstring(svg)
        table = operator_table(roots)
        assert table["operators"], "no operator spans attributed"
