"""Property-based tests over the SQL execution pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database


def _db_with(rows):
    db = Database()
    db.execute("CREATE TABLE t (a integer, b integer)")
    with db.begin():
        for a, b in rows:
            db.insert_row("t", {"a": a, "b": b})
    return db


rows_strategy = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)), max_size=60
)


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.integers(-60, 60))
def test_property_filter_matches_python(rows, threshold):
    db = _db_with(rows)
    got = db.execute("SELECT count(*) FROM t WHERE a > ?", [threshold]).scalar()
    assert got == sum(1 for a, _b in rows if a > threshold)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_property_aggregates_match_python(rows):
    db = _db_with(rows)
    result = db.execute("SELECT count(*), sum(a), min(b), max(b) FROM t").rows[0]
    expected = (
        len(rows),
        sum(a for a, _ in rows) if rows else None,
        min(b for _, b in rows) if rows else None,
        max(b for _, b in rows) if rows else None,
    )
    assert result == expected


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_property_order_by_is_sorted(rows):
    db = _db_with(rows)
    got = [r[0] for r in db.execute("SELECT a FROM t ORDER BY a").rows]
    assert got == sorted(a for a, _b in rows)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_property_group_by_partitions_rows(rows):
    db = _db_with(rows)
    groups = db.execute("SELECT a, count(*) FROM t GROUP BY a").rows
    assert sum(count for _a, count in groups) == len(rows)
    expected = {}
    for a, _b in rows:
        expected[a] = expected.get(a, 0) + 1
    assert dict(groups) == expected


@settings(max_examples=25, deadline=None)
@given(rows_strategy)
def test_property_self_join_count(rows):
    db = _db_with(rows)
    got = db.execute(
        "SELECT count(*) FROM t x, t y WHERE x.a = y.a"
    ).scalar()
    counts = {}
    for a, _b in rows:
        counts[a] = counts.get(a, 0) + 1
    assert got == sum(c * c for c in counts.values())


@settings(max_examples=25, deadline=None)
@given(rows_strategy, st.integers(0, 20))
def test_property_limit_prefix(rows, limit):
    db = _db_with(rows)
    full = db.execute("SELECT a, b FROM t ORDER BY a, b").rows
    limited = db.execute(
        "SELECT a, b FROM t ORDER BY a, b LIMIT ?", [limit]
    ).rows
    assert limited == full[:limit]


@settings(max_examples=25, deadline=None)
@given(rows_strategy)
def test_property_union_all_concatenates(rows):
    db = _db_with(rows)
    doubled = db.execute(
        "SELECT a FROM t UNION ALL SELECT a FROM t"
    ).rows
    assert len(doubled) == 2 * len(rows)


@settings(max_examples=20, deadline=None)
@given(rows_strategy)
def test_property_versioning_preserves_history_count(rows):
    """Every UPDATE adds exactly one history version per affected key."""
    db = Database()
    db.execute(
        "CREATE TABLE v (id integer NOT NULL, x integer,"
        " sb timestamp, se timestamp, PRIMARY KEY (id),"
        " PERIOD FOR system_time (sb, se))"
    )
    keys = set()
    for a, _b in rows:
        if a not in keys:
            keys.add(a)
            db.execute("INSERT INTO v (id, x) VALUES (?, 0)", [a])
    updates = 0
    for a, b in rows:
        db.execute("UPDATE v SET x = ? WHERE id = ?", [b, a])
        updates += 1
    total = db.execute("SELECT count(*) FROM v FOR SYSTEM_TIME ALL").scalar()
    assert total == len(keys) + updates
