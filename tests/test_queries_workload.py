"""Integration: every benchmark query parses, plans and runs; results are
identical across all four system archetypes (the architectures differ
physically, never logically)."""

import pytest

from repro.core.loader import Loader
from repro.core.queries import Workload
from repro.engine.sql import parse_statement
from repro.systems import make_system

WORKLOAD = Workload()


def test_workload_contains_all_classes():
    groups = {q.group for q in WORKLOAD}
    assert groups == {"T", "K", "R", "B"}
    assert len(WORKLOAD) >= 45
    assert "T5.all" in WORKLOAD.ids()
    assert len(WORKLOAD.by_group("B")) == 12  # baseline + 11 variants


@pytest.mark.parametrize("qid", Workload().ids())
def test_query_parses(qid):
    parse_statement(WORKLOAD.query(qid).sql)


@pytest.fixture(scope="module")
def all_systems(tiny_workload):
    systems = {}
    for name in "ABCD":
        system = make_system(name)
        Loader(system, tiny_workload).load()
        systems[name] = system
    return systems


@pytest.mark.parametrize("qid", Workload().ids())
def test_query_results_identical_across_systems(qid, all_systems, tiny_workload):
    query = WORKLOAD.query(qid)
    params = query.params(tiny_workload.meta)
    reference = None
    for name, system in all_systems.items():
        rows = sorted(map(_normalise, system.execute(query.sql, params).rows))
        if reference is None:
            reference = (name, rows)
        else:
            assert rows == reference[1], (
                f"{qid}: system {name} disagrees with {reference[0]}"
            )


def _normalise(row):
    return tuple(
        round(value, 6) if isinstance(value, float) else value for value in row
    )


def test_binders_use_generator_metadata(tiny_workload):
    params = WORKLOAD.query("K1.app").params(tiny_workload.meta)
    assert params["key"] == tiny_workload.meta.hottest_customer
    params = WORKLOAD.query("T1.sys").params(tiny_workload.meta)
    assert (
        tiny_workload.meta.initial_tick
        <= params["sys_point"]
        <= tiny_workload.meta.last_tick
    )
