"""Behavioural tests of the query classes on *constructed* micro-scenarios
(not generated workloads): each query class must detect exactly the events
we plant."""

import pytest

from repro.engine.types import END_OF_TIME
from repro.systems import make_system

CUSTOMER_DDL = (
    "CREATE TABLE customer ("
    " c_custkey integer NOT NULL, c_name varchar(25), c_address varchar(40),"
    " c_nationkey integer, c_phone varchar(15), c_acctbal decimal,"
    " c_mktsegment varchar(10), c_comment varchar(60),"
    " c_visible_begin date, c_visible_end date,"
    " sys_begin timestamp, sys_end timestamp,"
    " PRIMARY KEY (c_custkey),"
    " PERIOD FOR visible_time (c_visible_begin, c_visible_end),"
    " PERIOD FOR system_time (sys_begin, sys_end))"
)

PARTSUPP_DDL = (
    "CREATE TABLE partsupp ("
    " ps_partkey integer NOT NULL, ps_suppkey integer NOT NULL,"
    " ps_availqty integer, ps_supplycost decimal, ps_comment varchar(30),"
    " ps_valid_begin date, ps_valid_end date,"
    " sys_begin timestamp, sys_end timestamp,"
    " PRIMARY KEY (ps_partkey, ps_suppkey),"
    " PERIOD FOR validity_time (ps_valid_begin, ps_valid_end),"
    " PERIOD FOR system_time (sys_begin, sys_end))"
)


@pytest.fixture
def scenario():
    """One customer with a scripted balance history:

    tick 1: balance 100, visible [0, inf)
    tick 2: balance 200 from day 50 onwards (sequenced)
    tick 3: balance 300 everywhere (non-temporal update of both segments)
    """
    system = make_system("A")
    db = system.db
    db.execute(CUSTOMER_DDL)
    db.execute(
        "INSERT INTO customer (c_custkey, c_name, c_acctbal,"
        " c_visible_begin, c_visible_end) VALUES (1, 'planted', 100.0, 0, ?)",
        [END_OF_TIME],
    )
    db.execute(
        "UPDATE customer FOR PORTION OF visible_time FROM 50 TO ?"
        " SET c_acctbal = 200.0 WHERE c_custkey = 1",
        [END_OF_TIME],
    )
    db.execute("UPDATE customer SET c_acctbal = 300.0 WHERE c_custkey = 1")
    return system


class TestAuditClassSemantics:
    def test_k1_app_returns_current_segments(self, scenario):
        rows = scenario.execute(
            "SELECT c_acctbal, c_visible_begin FROM customer"
            " WHERE c_custkey = 1 ORDER BY c_visible_begin"
        ).rows
        assert rows == [(300.0, 0), (300.0, 50)]

    def test_k1_sys_traces_balance_evolution(self, scenario):
        rows = scenario.execute(
            "SELECT c_acctbal FROM customer FOR SYSTEM_TIME ALL"
            " FOR visible_time AS OF 10"      # the [0, 50) segment
            " WHERE c_custkey = 1 ORDER BY sys_begin"
        ).rows
        assert [r[0] for r in rows] == [100.0, 100.0, 300.0]
        # tick1 original; tick2 split remainder (still 100); tick3 update

    def test_k4_topn_returns_latest_first(self, scenario):
        rows = scenario.execute(
            "SELECT c_acctbal, sys_begin FROM customer FOR SYSTEM_TIME ALL"
            " WHERE c_custkey = 1 ORDER BY sys_begin DESC LIMIT 2"
        ).rows
        assert all(r[0] == 300.0 for r in rows)

    def test_k5_previous_version(self, scenario):
        rows = scenario.execute(
            "SELECT c.c_acctbal FROM customer FOR SYSTEM_TIME ALL c"
            " WHERE c.c_custkey = 1 AND c_visible_begin = 0"
            " AND c.sys_begin = (SELECT max(x.sys_begin)"
            "   FROM customer FOR SYSTEM_TIME ALL x"
            "   WHERE x.c_custkey = 1 AND x.sys_end < ?)",
            [END_OF_TIME],
        ).rows
        # the version directly before the live one (closed at tick 3)
        assert rows and rows[0][0] in (100.0, 200.0)

    def test_bitemporal_point_grid(self, scenario):
        grid = {
            (1, 10): 100.0,  # before anything else
            (1, 70): 100.0,  # split not yet recorded
            (2, 10): 100.0,  # split recorded; day 10 unchanged
            (2, 70): 200.0,  # day 70 now 200
            (3, 10): 300.0,
            (3, 70): 300.0,
        }
        for (tick, day), expected in grid.items():
            got = scenario.execute(
                "SELECT c_acctbal FROM customer"
                " FOR SYSTEM_TIME AS OF :t FOR visible_time AS OF :d"
                " WHERE c_custkey = 1",
                {"t": tick, "d": day},
            ).scalar()
            assert got == expected, (tick, day, got)


class TestRangeClassSemantics:
    @pytest.fixture
    def price_history(self):
        """partsupp (1,1) raises its price by >7.5% exactly once."""
        system = make_system("A")
        db = system.db
        db.execute(PARTSUPP_DDL)
        for partkey, cost in ((1, 100.0), (2, 100.0)):
            db.execute(
                "INSERT INTO partsupp (ps_partkey, ps_suppkey, ps_availqty,"
                " ps_supplycost, ps_valid_begin, ps_valid_end)"
                " VALUES (?, 1, 10, ?, 0, ?)",
                [partkey, cost, END_OF_TIME],
            )
        # +20% on part 1 (should be flagged), +5% on part 2 (should not)
        db.execute("UPDATE partsupp SET ps_supplycost = 120.0"
                   " WHERE ps_partkey = 1")
        db.execute("UPDATE partsupp SET ps_supplycost = 105.0"
                   " WHERE ps_partkey = 2")
        return system

    R7 = (
        "SELECT DISTINCT v2.ps_partkey"
        " FROM partsupp FOR SYSTEM_TIME ALL v1,"
        "      partsupp FOR SYSTEM_TIME ALL v2"
        " WHERE v1.ps_partkey = v2.ps_partkey"
        "   AND v1.ps_suppkey = v2.ps_suppkey"
        "   AND v2.sys_begin = v1.sys_end"
        "   AND v2.ps_supplycost > 1.075 * v1.ps_supplycost"
    )

    def test_r7_flags_exactly_the_planted_raise(self, price_history):
        rows = price_history.execute(self.R7).rows
        assert rows == [(1,)]

    def test_r2_state_durations(self, price_history):
        # each part has one closed version; its duration is se - sb
        rows = price_history.execute(
            "SELECT count(*), avg(sys_end - sys_begin)"
            " FROM partsupp FOR SYSTEM_TIME ALL WHERE sys_end < ?",
            [END_OF_TIME],
        ).rows
        count, avg_duration = rows[0]
        assert count == 2
        assert avg_duration > 0

    def test_r3_temporal_aggregation_series(self, price_history):
        rows = price_history.execute(
            "SELECT b.t, count(*), sum(o.ps_supplycost)"
            " FROM (SELECT DISTINCT sys_begin AS t"
            "       FROM partsupp FOR SYSTEM_TIME ALL) b,"
            "      partsupp FOR SYSTEM_TIME ALL o"
            " WHERE o.sys_begin <= b.t AND o.sys_end > b.t"
            " GROUP BY b.t ORDER BY b.t"
        ).rows
        # ticks: 1 (insert p1), 2 (insert p2), 3 (p1 raise), 4 (p2 raise)
        assert rows[0][1] == 1 and rows[0][2] == 100.0
        assert rows[1][1] == 2 and rows[1][2] == 200.0
        assert rows[2][2] == 220.0
        assert rows[3][2] == 225.0


class TestTimeTravelSemantics:
    def test_slicing_vs_point_consistency(self, scenario):
        """A system-time slice must contain every point snapshot."""
        slice_count = scenario.execute(
            "SELECT count(*) FROM customer FOR SYSTEM_TIME FROM 1 TO 99"
            " WHERE c_custkey = 1"
        ).scalar()
        for tick in (1, 2, 3):
            point_count = scenario.execute(
                "SELECT count(*) FROM customer FOR SYSTEM_TIME AS OF ?"
                " WHERE c_custkey = 1", [tick],
            ).scalar()
            assert point_count <= slice_count

    def test_between_is_inclusive(self, scenario):
        from_to = scenario.execute(
            "SELECT count(*) FROM customer FOR SYSTEM_TIME FROM 1 TO 2"
        ).scalar()
        between = scenario.execute(
            "SELECT count(*) FROM customer FOR SYSTEM_TIME BETWEEN 1 AND 2"
        ).scalar()
        assert between >= from_to
