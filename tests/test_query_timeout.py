"""Cooperative timeout and cancellation through ExecutionContext."""

import time

import pytest

from repro.engine import Database
from repro.engine.errors import OperationalError, QueryCancelled, QueryTimeout
from repro.engine.plan import ExecutionContext
from repro.bench.service import BenchmarkService


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE n (v integer NOT NULL, PRIMARY KEY (v))"
    )
    for i in range(200):
        database.execute("INSERT INTO n (v) VALUES (?)", [i])
    return database


class TestExecutionContext:
    def test_expired_deadline_raises_on_next_operator(self, db):
        planned = db._sql_engine.planner.plan_select(
            __import__("repro.engine.sql", fromlist=["parse_statement"])
            .parse_statement("SELECT v FROM n")
        )
        ctx = ExecutionContext.begin(timeout_s=0)
        with pytest.raises(QueryTimeout):
            planned.rows(ctx)

    def test_timeout_is_operational_error(self):
        assert issubclass(QueryTimeout, OperationalError)
        assert issubclass(QueryCancelled, OperationalError)

    def test_cancel_check_aborts(self, db):
        planned = db._sql_engine.planner.plan_select(
            __import__("repro.engine.sql", fromlist=["parse_statement"])
            .parse_statement("SELECT v FROM n")
        )
        ctx = ExecutionContext.begin(cancel_check=lambda: True)
        with pytest.raises(QueryCancelled):
            planned.rows(ctx)

    def test_no_deadline_executes_normally(self, db):
        assert len(db.execute("SELECT v FROM n", timeout_s=None).rows) == 200

    def test_guard_iter_is_identity_without_deadline(self):
        ctx = ExecutionContext.begin()
        items = [1, 2, 3]
        assert ctx.guard_iter(items) is items

    def test_guard_iter_polls_deadline(self):
        ctx = ExecutionContext.begin(timeout_s=0)
        with pytest.raises(QueryTimeout):
            list(ctx.guard_iter(iter(range(10_000)), every=64))


class TestEngineTimeout:
    def test_zero_timeout_aborts_query(self, db):
        with pytest.raises(QueryTimeout):
            db.execute(
                "SELECT a.v FROM n a, n b WHERE a.v + b.v > 0", timeout_s=0
            )

    def test_cached_plan_respects_timeout(self, db):
        sql = "SELECT v FROM n WHERE v < 5"
        assert len(db.execute(sql).rows) == 5  # plan is now cached
        with pytest.raises(QueryTimeout):
            db.execute(sql, timeout_s=0)

    def test_timed_out_query_stops_early(self, db):
        # a cross-product of 200x200x200 rows takes far longer than the
        # budget; cooperative abort must return well before completing it
        started = time.perf_counter()
        with pytest.raises(QueryTimeout):
            db.execute(
                "SELECT count(*) FROM n a, n b, n c"
                " WHERE a.v + b.v + c.v > 999999",
                timeout_s=0.02,
            )
        assert time.perf_counter() - started < 5.0

    def test_dbapi_connection_timeout(self, db):
        from repro.engine import dbapi

        conn = dbapi.connect(database=db)
        conn.timeout_s = 0
        cur = conn.cursor()
        with pytest.raises(QueryTimeout):
            cur.execute("SELECT v FROM n")
        conn.timeout_s = None
        assert len(cur.execute("SELECT v FROM n").fetchall()) == 200


class TestBenchServiceIntegration:
    def test_timeout_measurement_flagged_and_early(self, db):
        service = BenchmarkService(repetitions=5, discard=1, timeout_s=0.02)
        m = service.measure_sql(
            db,
            "SELECT count(*) FROM n a, n b, n c WHERE a.v + b.v + c.v > 999999",
            qid="Q-timeout",
        )
        assert m.timed_out
        assert m.times  # the cutoff instant was recorded
        assert m.label().startswith("Q-timeout")
        assert "TIMEOUT" in m.label()

    def test_fast_queries_unaffected_by_timeout_setting(self, db):
        service = BenchmarkService(repetitions=4, discard=1, timeout_s=10.0)
        m = service.measure_sql(db, "SELECT count(*) FROM n", qid="Q-fast")
        assert not m.timed_out
        assert len(m.times) == 3
