"""The strongest cross-architecture property: a *random* bitemporal DML
workload, applied through SQL to every archetype, leaves all of them with
identical logical content at every probed point in both time dimensions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systems import make_system

DDL = (
    "CREATE TABLE w ("
    " id integer NOT NULL, v integer,"
    " ab date, ae date, sb timestamp, se timestamp,"
    " PRIMARY KEY (id),"
    " PERIOD FOR business_time (ab, ae),"
    " PERIOD FOR system_time (sb, se))"
)

# an operation: (kind, key, value, lo, width)
operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "seq_update", "seq_delete", "delete"]),
        st.integers(1, 4),        # key
        st.integers(0, 99),       # value
        st.integers(0, 90),       # portion lo
        st.integers(1, 30),       # portion width
    ),
    max_size=18,
)


def _apply(db, ops):
    inserted = set()
    for kind, key, value, lo, width in ops:
        hi = lo + width
        if kind == "insert":
            if key in inserted:
                continue
            inserted.add(key)
            db.execute(
                "INSERT INTO w (id, v, ab, ae) VALUES (?, ?, 0, 120)",
                [key, value],
            )
        elif kind == "update":
            db.execute("UPDATE w SET v = ? WHERE id = ?", [value, key])
        elif kind == "seq_update":
            db.execute(
                "UPDATE w FOR PORTION OF business_time FROM ? TO ?"
                " SET v = ? WHERE id = ?",
                [lo, hi, value, key],
            )
        elif kind == "seq_delete":
            db.execute(
                "DELETE FROM w FOR PORTION OF business_time FROM ? TO ?"
                " WHERE id = ?",
                [lo, hi, key],
            )
        else:
            db.execute("DELETE FROM w WHERE id = ?", [key])
            inserted.discard(key)


def _logical_content(db, ticks, days):
    """Visible (id, v) sets at a grid of bitemporal points, plus ALL."""
    snapshot = []
    for tick in ticks:
        for day in days:
            rows = db.execute(
                "SELECT id, v FROM w FOR SYSTEM_TIME AS OF :t"
                " FOR BUSINESS_TIME AS OF :d ORDER BY id",
                {"t": tick, "d": day},
            ).rows
            snapshot.append((tick, day, tuple(rows)))
    everything = db.execute(
        "SELECT id, v, ab, ae, sb, se FROM w FOR SYSTEM_TIME ALL"
        " ORDER BY id, sb, ab"
    ).rows
    return snapshot, tuple(everything)


@settings(max_examples=10, deadline=None)
@given(operations)
def test_property_all_archetypes_agree_on_random_workloads(ops):
    systems = {name: make_system(name) for name in "ABCDE"}
    for system in systems.values():
        system.execute(DDL)
        _apply(system.db, ops)
    last_tick = max(s.db.now() for s in systems.values())
    ticks = [1, max(1, last_tick // 2), max(1, last_tick)]
    days = [0, 30, 60, 119]
    reference_name = None
    reference = None
    for name, system in systems.items():
        content = _logical_content(system.db, ticks, days)
        if reference is None:
            reference_name, reference = name, content
        else:
            assert content[0] == reference[0], (
                f"{name} disagrees with {reference_name} on a snapshot"
            )
            assert content[1] == reference[1], (
                f"{name} disagrees with {reference_name} on the full history"
            )


@settings(max_examples=8, deadline=None)
@given(operations)
def test_property_timeline_snapshot_equals_scan(ops):
    """System E's timeline snapshots agree with a filtered full scan for
    every tick that ever appeared in the history."""
    system = make_system("E")
    system.execute(DDL)
    _apply(system.db, ops)
    timeline = system.db.timeline("w")
    for tick in timeline.boundaries():
        via_timeline = sorted(
            row[0] for row in system.snapshot_rows("w", tick)
        )
        via_sql = sorted(
            row[0]
            for row in system.db.execute(
                "SELECT id FROM w FOR SYSTEM_TIME ALL"
                " WHERE sb <= ? AND se > ?", [tick, tick]
            ).rows
        )
        assert via_timeline == via_sql, tick
