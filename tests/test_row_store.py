"""Row store / append log unit tests."""

from repro.engine.storage.row_store import AppendLog, RowStore


def test_append_fetch():
    store = RowStore(page_size=4)
    rids = [store.append([i, f"row{i}"]) for i in range(10)]
    assert rids == list(range(10))
    assert store.fetch(3) == [3, "row3"]
    assert store.fetch(99) is None


def test_paging():
    store = RowStore(page_size=4)
    for i in range(10):
        store.append([i])
    assert store.page_count == 3


def test_delete_tombstones():
    store = RowStore(page_size=4)
    for i in range(6):
        store.append([i])
    assert store.delete(2)
    assert not store.delete(2)
    assert store.fetch(2) is None
    assert len(store) == 5
    assert [row[0] for _rid, row in store.scan()] == [0, 1, 3, 4, 5]


def test_update_in_place():
    store = RowStore()
    rid = store.append([1, "a"])
    store.update_in_place(rid, [1, "b"])
    assert store.fetch(rid) == [1, "b"]


def test_scan_yields_rids_in_order():
    store = RowStore(page_size=3)
    for i in range(7):
        store.append([i])
    rids = [rid for rid, _row in store.scan()]
    assert rids == list(range(7))


def test_clear():
    store = RowStore()
    store.append([1])
    store.clear()
    assert len(store) == 0
    assert list(store.scan()) == []


def test_append_log_drain():
    log = AppendLog()
    log.append("a")
    log.append("b")
    assert len(log) == 2
    assert log.peek() == ["a", "b"]
    assert log.drain() == ["a", "b"]
    assert len(log) == 0
    assert log.drain() == []
