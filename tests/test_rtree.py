"""R-Tree (GiST stand-in) unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.index.rtree import RTree


class TestBasics:
    def test_insert_and_contains(self):
        tree = RTree(max_entries=4)
        tree.insert((0, 10), "a")
        tree.insert((5, 15), "b")
        tree.insert((20, 30), "c")
        assert sorted(tree.search_contains(7)) == ["a", "b"]
        assert tree.search_contains(25) == ["c"]
        assert tree.search_contains(16) == []

    def test_empty_interval_rejected(self):
        tree = RTree()
        with pytest.raises(ValueError):
            tree.insert((5, 5), "x")

    def test_min_entries_enforced(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_overlap_half_open(self):
        tree = RTree(max_entries=4)
        tree.insert((0, 10), "a")
        assert tree.search_overlap(10, 20) == []
        assert tree.search_overlap(9, 20) == ["a"]

    def test_growth_and_height(self):
        tree = RTree(max_entries=4)
        for i in range(100):
            tree.insert((i, i + 5), i)
        assert len(tree) == 100
        assert tree.height() >= 2
        assert sorted(tree.all_values()) == list(range(100))


intervals = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 50)), max_size=150
)


@settings(max_examples=50, deadline=None)
@given(intervals, st.integers(0, 550))
def test_property_contains_matches_bruteforce(items, point):
    tree = RTree(max_entries=4)
    for index, (start, length) in enumerate(items):
        tree.insert((start, start + length), index)
    expected = sorted(
        i for i, (s, n) in enumerate(items) if s <= point < s + n
    )
    assert sorted(tree.search_contains(point)) == expected


@settings(max_examples=50, deadline=None)
@given(intervals, st.integers(0, 550), st.integers(1, 80))
def test_property_overlap_matches_bruteforce(items, low, width):
    high = low + width
    tree = RTree(max_entries=4)
    for index, (start, length) in enumerate(items):
        tree.insert((start, start + length), index)
    expected = sorted(
        i for i, (s, n) in enumerate(items) if s < high and low < s + n
    )
    assert sorted(tree.search_overlap(low, high)) == expected


@settings(max_examples=25, deadline=None)
@given(intervals)
def test_property_all_values_complete(items):
    tree = RTree(max_entries=4)
    for index, (start, length) in enumerate(items):
        tree.insert((start, start + length), index)
    assert sorted(tree.all_values()) == list(range(len(items)))
