"""Unit tests for the nine update scenarios."""


from repro.core.dbgen import generate_initial
from repro.core.generator import TABLE_SPECS
from repro.core.history import GeneratorStore
from repro.core.rng import Rng
from repro.core.scenarios import (
    SCENARIOS,
    ScenarioContext,
    cancel_order,
    change_price,
    delay_availability,
    deliver_order,
    manipulate_order,
    new_order,
    pick_scenario,
    receive_payment,
    scenario_table,
    update_stock,
    update_supplier,
)
from repro.engine.types import END_OF_TIME


def _context(seed=1):
    initial = generate_initial(0.0003, seed=seed)
    store = GeneratorStore(TABLE_SPECS)
    for name, _k, _p in TABLE_SPECS:
        for values in initial[name]:
            store.table(name).insert(values, 1)
        store.table(name).initial_count = len(initial[name])
    ctx = ScenarioContext(
        store=store,
        rng=Rng(seed),
        day=3000,
        next_orderkey=len(initial["orders"]) + 1,
        next_custkey=len(initial["customer"]) + 1,
        part_count=len(initial["part"]),
        supplier_count=len(initial["supplier"]),
    )
    ctx.open_orders = [
        o["o_orderkey"] for o in initial["orders"] if o["o_orderstatus"] == "O"
    ]
    for row in initial["lineitem"]:
        ctx.order_lines.setdefault(row["l_orderkey"], []).append(row["l_linenumber"])
    return ctx


def test_table1_probabilities_sum_to_one():
    assert abs(sum(p for _n, p in scenario_table()) - 1.0) < 1e-9
    assert dict(scenario_table())["new_order"] == 0.30
    assert len(SCENARIOS) == 9


def test_pick_scenario_respects_weights():
    rng = Rng(42)
    counts = {}
    for _ in range(4000):
        name = pick_scenario(rng).name
        counts[name] = counts.get(name, 0) + 1
    assert counts["new_order"] > counts["cancel_order"]
    assert abs(counts["new_order"] / 4000 - 0.30) < 0.05


def test_new_order_inserts_order_and_lineitems():
    ctx = _context()
    orders_before = ctx.store.table("orders").live_version_count()
    assert new_order(ctx, tick=2)
    assert ctx.store.table("orders").live_version_count() == orders_before + 1
    inserted = [op for op in ctx.ops if op[0] == "insert"]
    tables = {op[1] for op in inserted}
    assert "orders" in tables and "lineitem" in tables
    assert ctx.open_orders[-1] == ctx.next_orderkey - 1
    # lineitem index kept in sync
    assert ctx.order_lines[ctx.next_orderkey - 1]


def test_cancel_order_deletes_order_and_lines():
    ctx = _context()
    new_order(ctx, tick=2)  # guarantee at least one open order
    ctx.ops = []
    assert cancel_order(ctx, tick=3)
    deletes = [op for op in ctx.ops if op[0] == "delete"]
    assert deletes[0][1] == "orders"
    orderkey = deletes[0][2][0]
    assert orderkey not in ctx.open_orders
    assert all(op[2][0] == orderkey for op in deletes if op[1] == "lineitem")


def test_deliver_then_receive_payment():
    ctx = _context()
    new_order(ctx, tick=2)  # guarantee at least one open order
    ctx.ops = []
    assert deliver_order(ctx, tick=3)
    update = next(op for op in ctx.ops if op[0] == "update" and op[1] == "orders")
    assert update[3]["o_orderstatus"] == "F"
    assert ctx.receivable_orders
    ctx.ops = []
    assert receive_payment(ctx, tick=4)
    # payment books the amount on the customer (app-time update)
    assert any(op[0] == "seq_update" and op[1] == "customer" for op in ctx.ops)


def test_deliver_with_no_open_orders_skips():
    ctx = _context()
    ctx.open_orders = []
    assert not deliver_order(ctx, tick=2)


def test_update_stock_sequenced_from_today():
    ctx = _context()
    assert update_stock(ctx, tick=2)
    op = ctx.ops[0]
    assert op[0] == "seq_update" and op[1] == "partsupp"
    assert op[4] == "validity_time"
    assert op[5] == ctx.day and op[6] == END_OF_TIME


def test_delay_availability_punches_gap():
    ctx = _context()
    assert delay_availability(ctx, tick=2)
    op = ctx.ops[0]
    assert op[0] == "seq_delete" and op[1] == "part"
    key = op[2]
    spans = sorted(
        (v["p_avail_begin"], v["p_avail_end"])
        for v, _t in ctx.store.table("part").current_versions()
        if (v["p_partkey"],) == key
    )
    assert len(spans) == 2  # the gap split the availability window


def test_change_price_alters_supplycost():
    ctx = _context()
    assert change_price(ctx, tick=2)
    op = ctx.ops[0]
    assert op[1] == "partsupp" and "ps_supplycost" in op[3]
    assert op[3]["ps_supplycost"] > 0


def test_update_supplier_nontemporal():
    ctx = _context()
    assert update_supplier(ctx, tick=2)
    op = ctx.ops[0]
    assert op[0] == "update" and op[1] == "supplier"
    assert ctx.store.table("supplier").stats.nontemporal_updates == 1


def test_manipulate_order_overwrites_past_app_time():
    ctx = _context()
    assert manipulate_order(ctx, tick=2)
    op = ctx.ops[0]
    assert op[0] == "seq_update" and op[1] == "orders"
    assert op[4] == "active_time"
    assert ctx.store.table("orders").stats.app_time_overwrites >= 1
