"""TPC-BiH schema structure (paper Fig 1)."""


from repro.core.schema import (
    APP_PERIODS,
    VERSIONED_TABLES,
    benchmark_schemas,
    create_benchmark_tables,
    nontemporal_schemas,
)
from repro.engine import Database


def _by_name():
    return {s.name: s for s in benchmark_schemas()}


def test_eight_tables_in_load_order():
    names = [s.name for s in benchmark_schemas()]
    assert names == [
        "region", "nation", "supplier", "part",
        "partsupp", "customer", "orders", "lineitem",
    ]


def test_region_nation_unversioned():
    schemas = _by_name()
    assert not schemas["region"].is_temporal
    assert not schemas["nation"].is_temporal


def test_supplier_degenerate():
    supplier = _by_name()["supplier"]
    assert supplier.system_period is not None
    assert supplier.application_periods == []


def test_orders_has_two_application_periods():
    orders = _by_name()["orders"]
    names = [p.name for p in orders.application_periods]
    assert names == ["active_time", "receivable_time"]
    assert orders.system_period is not None


def test_every_versioned_table_has_sys_columns():
    schemas = _by_name()
    for name in VERSIONED_TABLES:
        schema = schemas[name]
        assert schema.has_column("sys_begin") and schema.has_column("sys_end")


def test_app_period_map_matches_schemas():
    schemas = _by_name()
    for table, period in APP_PERIODS.items():
        app = schemas[table].application_periods
        if period is None:
            assert app == [] or table in ("region", "nation", "supplier")
        else:
            assert app[0].name == period


def test_primary_keys():
    schemas = _by_name()
    assert schemas["lineitem"].primary_key == ("l_orderkey", "l_linenumber")
    assert schemas["partsupp"].primary_key == ("ps_partkey", "ps_suppkey")
    assert schemas["orders"].primary_key == ("o_orderkey",)


def test_tpch_columns_survive_detemporalisation():
    """§3.1: any TPC-H query can run — the plain columns are all present."""
    for schema in nontemporal_schemas():
        assert not schema.is_temporal
        assert "sys_begin" not in schema.column_names()
    lineitem = {s.name: s for s in nontemporal_schemas()}["lineitem"]
    for column in ("l_shipdate", "l_commitdate", "l_receiptdate", "l_extendedprice"):
        assert lineitem.has_column(column)


def test_create_benchmark_tables_both_modes():
    temporal = Database()
    create_benchmark_tables(temporal, temporal=True)
    assert temporal.table("orders").is_versioned
    plain = Database()
    create_benchmark_tables(plain, temporal=False)
    assert not plain.table("orders").is_versioned
