"""Every SQL snippet shown in docs/SQL_DIALECT.md must actually work.

Documentation rot is a bug; this suite executes representative statements
for each documented feature group against a fresh database.
"""

import pytest

from repro.engine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orders_doc ("
        " o_orderkey integer NOT NULL, o_total decimal,"
        " o_active_begin date, o_active_end date,"
        " sys_begin timestamp, sys_end timestamp,"
        " PRIMARY KEY (o_orderkey),"
        " PERIOD FOR active_time (o_active_begin, o_active_end),"
        " PERIOD FOR system_time (sys_begin, sys_end))"
    )
    database.execute(
        "INSERT INTO orders_doc (o_orderkey, o_total, o_active_begin,"
        " o_active_end) VALUES (1, 10.0, 0, 100), (2, 20.0, 10, 50)"
    )
    return database


class TestDocumentedDdl:
    def test_index_variants(self, db):
        db.execute("CREATE INDEX d1 ON orders_doc (o_total)")
        db.execute("CREATE INDEX d2 ON orders_doc (o_total) USING hash")
        db.execute(
            "CREATE INDEX d3 ON orders_doc (o_active_begin, o_active_end)"
            " USING rtree"
        )
        db.execute("CREATE INDEX d4 ON orders_doc (o_total) ON history")
        assert len(db.catalog.indexes_on("orders_doc")) == 4

    def test_view_lifecycle(self, db):
        db.execute("CREATE VIEW doc_v AS SELECT o_orderkey FROM orders_doc")
        assert db.execute("SELECT count(*) FROM doc_v").scalar() == 2
        db.execute("DROP VIEW doc_v")


class TestDocumentedTemporalRefs:
    @pytest.mark.parametrize("clause,params", [
        ("FOR SYSTEM_TIME AS OF 1", {}),
        ("FOR SYSTEM_TIME FROM 1 TO 5", {}),
        ("FOR SYSTEM_TIME BETWEEN 1 AND 5", {}),
        ("FOR SYSTEM_TIME ALL", {}),
        ("FOR BUSINESS_TIME AS OF 20", {}),
        ("FOR active_time AS OF 20", {}),
        ("FOR active_time FROM 0 TO 60", {}),
    ])
    def test_every_documented_clause(self, db, clause, params):
        result = db.execute(f"SELECT count(*) FROM orders_doc {clause}", params)
        assert result.scalar() >= 0

    def test_business_time_aliases_first_period(self, db):
        via_alias = db.execute(
            "SELECT count(*) FROM orders_doc FOR BUSINESS_TIME AS OF 20"
        ).scalar()
        via_name = db.execute(
            "SELECT count(*) FROM orders_doc FOR active_time AS OF 20"
        ).scalar()
        assert via_alias == via_name == 2


class TestDocumentedExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3", 7),
        ("'a' || 'b'", "ab"),
        ("5 BETWEEN 1 AND 9", True),
        ("'abc' LIKE 'a%'", True),
        ("2 IN (1, 2)", True),
        ("NULL IS NULL", True),
        ("CASE WHEN 1 = 1 THEN 'y' ELSE 'n' END", "y"),
        ("extract(year FROM date '1994-06-17')", 1994),
        ("substring('hello' FROM 1 FOR 2)", "he"),
        ("coalesce(NULL, 9)", 9),
        ("greatest(1, 5, 3)", 5),
        ("least(4, 2)", 2),
        ("mod(7, 3)", 1),
        ("abs(-2)", 2),
        ("upper('x')", "X"),
        ("lower('X')", "x"),
        ("length('abcd')", 4),
        ("nullif(1, 1)", None),
        ("round(2.345, 2)", 2.35),
        ("floor(2.9)", 2),
        ("ceil(2.1)", 3),
    ])
    def test_documented_functions(self, db, expr, expected):
        assert db.execute(f"SELECT {expr}").scalar() == expected

    def test_interval_units(self, db):
        from repro.engine.types import date_to_day

        assert db.execute(
            "SELECT date '1994-01-01' + interval '1' year"
        ).scalar() == date_to_day("1995-01-01")
        assert db.execute(
            "SELECT date '1994-01-31' + interval '1' month"
        ).scalar() == date_to_day("1994-02-28")
        assert db.execute(
            "SELECT date '1994-01-01' + interval '10' day"
        ).scalar() == date_to_day("1994-01-11")


class TestDocumentedExplain:
    def test_explain_returns_plan_rows(self, db):
        result = db.execute(
            "EXPLAIN SELECT o_orderkey FROM orders_doc WHERE o_total > 5"
        )
        assert result.columns == ["plan"]
        assert any("Access(orders_doc" in row[0] for row in result.rows)

    def test_explain_analyze_reports_counters(self, db):
        result = db.execute(
            "EXPLAIN ANALYZE SELECT o_orderkey FROM orders_doc"
            " FOR SYSTEM_TIME AS OF 1"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "actual rows=" in text
        assert "loops=" in text
        assert "time=" in text

    def test_explain_lint_reports_diagnostics(self, db):
        result = db.execute(
            "EXPLAIN (LINT) SELECT * FROM orders_doc FOR SYSTEM_TIME ALL"
        )
        assert result.columns == ["plan"]
        text = "\n".join(row[0] for row in result.rows)
        assert "TQ001" in text
        assert "hint:" in text

    def test_explain_lint_clean_statement(self, db):
        result = db.execute(
            "EXPLAIN LINT SELECT o_orderkey FROM orders_doc"
        )
        assert [row[0] for row in result.rows] == ["no diagnostics"]

    def test_explain_analyze_lint_combines_both(self, db):
        result = db.execute(
            "EXPLAIN (ANALYZE, LINT) SELECT o_orderkey FROM orders_doc"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "no diagnostics" in text
        assert "actual rows=" in text

    def test_explain_rejects_dml(self, db):
        from repro.engine.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            db.execute("EXPLAIN DELETE FROM orders_doc")


class TestDocumentedLimits:
    def test_no_full_outer_join(self, db):
        from repro.engine.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT 1 FROM orders_doc FULL OUTER JOIN orders_doc x ON 1 = 1")

    def test_no_intersect(self, db):
        from repro.engine.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT 1 INTERSECT SELECT 1")

    def test_order_by_null_placement(self, db):
        db.execute("INSERT INTO orders_doc (o_orderkey, o_total,"
                    " o_active_begin, o_active_end) VALUES (3, NULL, 0, 10)")
        ascending = db.execute(
            "SELECT o_total FROM orders_doc ORDER BY o_total"
        ).rows
        assert ascending[-1][0] is None          # NULLs last ascending
        descending = db.execute(
            "SELECT o_total FROM orders_doc ORDER BY o_total DESC"
        ).rows
        assert descending[0][0] is None          # NULLs first descending
