"""Per-column statistics: collection, ANALYZE, and invalidation.

The statistics snapshot must describe each partition separately, go
stale on any DDL/DML, and surface its lifecycle through the ``stats.*``
counters — the cost model trusts ``Database.stats_for`` to never return
a snapshot that no longer matches the table.
"""

import pytest

from repro.engine import Database
from repro.engine import stats as stats_mod


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (a integer NOT NULL, b integer, c varchar,"
        " sb timestamp, se timestamp,"
        " PRIMARY KEY (a), PERIOD FOR system_time (sb, se))"
    )
    for i in range(20):
        database.execute(
            "INSERT INTO t (a, b, c) VALUES (?, ?, ?)",
            [i, (i % 5) if i % 4 else None, f"s{i}"],
        )
    return database


class TestCollection:
    def test_partition_row_counts(self, db):
        db.execute("UPDATE t SET b = 99 WHERE a < 3")  # 3 versions -> history
        snap = db.analyze("t")[0]
        assert snap.partition("current").row_count == 20
        assert snap.partition("history").row_count == 3
        assert snap.row_count == 23

    def test_column_ndv_and_minmax(self, db):
        snap = db.analyze("t")[0]
        col = snap.column("current", "a")
        assert col.ndv == 20
        assert (col.min_value, col.max_value) == (0, 19)

    def test_null_fraction(self, db):
        snap = db.analyze("t")[0]
        col = snap.column("current", "b")
        assert col.nulls == 5  # a = 0, 4, 8, 12, 16
        assert col.null_fraction == pytest.approx(0.25)

    def test_histogram_covers_numeric_range(self, db):
        snap = db.analyze("t")[0]
        col = snap.column("current", "a")
        assert col.histogram
        assert sum(count for _, _, count in col.histogram) == 20
        assert col.histogram[0][0] == 0
        assert col.histogram[-1][1] == 19

    def test_constant_column_has_no_histogram(self, db):
        database = Database()
        database.execute(
            "CREATE TABLE k (a integer NOT NULL, b integer, PRIMARY KEY (a))"
        )
        for i in range(5):
            database.execute("INSERT INTO k (a, b) VALUES (?, 7)", [i])
        snap = database.analyze("k")[0]
        col = snap.column("single", "b")
        assert col.histogram == ()
        assert (col.min_value, col.max_value) == (7, 7)

    def test_string_column_minmax_no_histogram(self, db):
        snap = db.analyze("t")[0]
        col = snap.column("current", "c")
        assert col.histogram == ()
        assert col.ndv == 20

    def test_merged_column_spans_partitions(self, db):
        db.execute("UPDATE t SET b = 77 WHERE a = 0")
        snap = db.analyze("t")[0]
        merged = snap.merged_column("b")
        assert merged.max_value == 77


class TestAnalyzeStatement:
    def test_analyze_table_result_shape(self, db):
        result = db.execute("ANALYZE TABLE t")
        assert result.columns == [
            "table", "partition", "row_count", "columns_analyzed"
        ]
        partitions = {row[1]: row[2] for row in result.rows}
        assert partitions["current"] == 20

    def test_analyze_without_table_covers_all(self, db):
        db.execute(
            "CREATE TABLE u (x integer NOT NULL, PRIMARY KEY (x))"
        )
        result = db.execute("ANALYZE")
        assert {row[0] for row in result.rows} == {"t", "u"}

    def test_analyze_unknown_table_fails(self, db):
        with pytest.raises(Exception):
            db.execute("ANALYZE TABLE missing")

    def test_table_keyword_optional(self, db):
        assert db.execute("ANALYZE t").rows == db.execute("ANALYZE TABLE t").rows


class TestValidity:
    def test_stats_for_after_analyze(self, db):
        db.analyze("t")
        assert db.stats_for("t") is not None

    def test_no_analyze_no_stats(self, db):
        assert db.stats_for("t") is None

    def test_insert_invalidates(self, db):
        db.analyze("t")
        db.execute("INSERT INTO t (a, b) VALUES (100, 1)")
        assert db.stats_for("t") is None

    def test_versioning_update_invalidates(self, db):
        db.analyze("t")
        db.execute("UPDATE t SET b = 1 WHERE a = 5")
        assert db.stats_for("t") is None

    def test_delete_invalidates(self, db):
        db.analyze("t")
        db.execute("DELETE FROM t WHERE a = 5")
        assert db.stats_for("t") is None

    def test_ddl_invalidates(self, db):
        db.analyze("t")
        db.execute("CREATE INDEX i_t_b ON t (b)")
        assert db.stats_for("t") is None

    def test_reanalyze_restores(self, db):
        db.analyze("t")
        db.execute("INSERT INTO t (a, b) VALUES (100, 1)")
        db.analyze("t")
        snap = db.stats_for("t")
        assert snap is not None
        assert snap.partition("current").row_count == 21

    def test_plain_write_invalidates_nonversioned_table(self):
        database = Database()
        database.execute(
            "CREATE TABLE p (x integer NOT NULL, y integer, PRIMARY KEY (x))"
        )
        database.execute("INSERT INTO p (x, y) VALUES (1, 1)")
        database.analyze("p")
        database.execute("UPDATE p SET y = 2 WHERE x = 1")
        assert database.stats_for("p") is None

    def test_drop_table_drops_stats(self, db):
        db.analyze("t")
        db.execute("DROP TABLE t")
        assert db.catalog.stats_of("t") is None


class TestMetrics:
    def test_analyze_counters(self, db):
        db.execute("CREATE TABLE u (x integer NOT NULL, PRIMARY KEY (x))")
        db.execute("ANALYZE")
        counters = db.metrics.snapshot()["counters"]
        assert counters["stats.analyze_runs"] == 1
        assert counters["stats.tables_analyzed"] == 2

    def test_lookup_counters(self, db):
        db.stats_for("t")  # miss
        db.analyze("t")
        db.stats_for("t")  # hit
        db.execute("INSERT INTO t (a) VALUES (500)")
        db.stats_for("t")  # stale
        counters = db.metrics.snapshot()["counters"]
        assert counters["stats.lookups"] == 3
        assert counters["stats.misses"] == 1
        assert counters["stats.hits"] == 1
        assert counters["stats.stale"] == 1


class TestModuleHelpers:
    def test_column_stats_histogram_slots(self):
        col = stats_mod._column_stats(list(range(100)), buckets=4)
        assert len(col.histogram) == 4
        assert all(count == 25 for _, _, count in col.histogram)

    def test_mutation_marker_ingredients(self, db):
        table = db.table("t")
        before = stats_mod.mutation_marker(table)
        db.execute("INSERT INTO t (a) VALUES (900)")
        assert stats_mod.mutation_marker(table) == before + 1
