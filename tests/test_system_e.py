"""System E: the Timeline-Index research archetype (paper future work)."""

import pytest

from repro.core.loader import Loader
from repro.core.queries import Workload
from repro.systems import make_system

WORKLOAD = Workload()


@pytest.fixture(scope="module")
def loaded_e(tiny_workload):
    system = make_system("E")
    Loader(system, tiny_workload).load()
    return system


def test_architecture():
    system = make_system("E")
    assert not system.db.default_options.split_history
    assert system.db.profile.name == "System E"


def test_timeline_maintained_per_versioned_table(loaded_e):
    assert len(loaded_e.db.timeline("orders")) > 0
    assert len(loaded_e.db.timeline("customer")) > 0
    with pytest.raises(KeyError):
        loaded_e.db.timeline("region")  # unversioned: no timeline


def test_sql_results_match_system_a(tiny_workload, loaded_e, loaded_system_a):
    for qid in ("T2.sys", "T5.all", "T6.sysslice", "K1.sys", "B3.2"):
        query = WORKLOAD.query(qid)
        params = query.params(tiny_workload.meta)
        rows_e = sorted(loaded_e.execute(query.sql, params).rows)
        rows_a = sorted(loaded_system_a.execute(query.sql, params).rows)
        assert _norm(rows_e) == _norm(rows_a), qid


def _norm(rows):
    return [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    ]


def test_as_of_uses_timeline_access_path(loaded_e, tiny_workload):
    plan = loaded_e.db.explain(
        "SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF 1"
    )
    # the plan itself is decided at run time; run once then inspect decisions
    loaded_e.execute(
        "SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF ?",
        [tiny_workload.meta.mid_tick()],
    )
    assert "Access(orders" in plan


def test_native_snapshot_equals_sql(loaded_e, tiny_workload):
    tick = tiny_workload.meta.mid_tick()
    native = loaded_e.snapshot_rows("orders", tick)
    via_sql = loaded_e.execute(
        "SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF ?", [tick]
    ).scalar()
    assert len(native) == via_sql


def test_native_temporal_aggregate_matches_r3(loaded_e):
    """The one-sweep operator returns the same series as the R3 SQL rewrite."""
    sql_rows = loaded_e.execute(
        "SELECT b.t, count(*)"
        " FROM (SELECT DISTINCT sys_begin AS t"
        "       FROM orders FOR SYSTEM_TIME ALL) b,"
        "      orders FOR SYSTEM_TIME ALL o"
        " WHERE o.sys_begin <= b.t AND o.sys_end > b.t"
        " GROUP BY b.t"
    ).rows
    native = dict(loaded_e.temporal_aggregate("orders", "o_totalprice", ("count",)))
    for tick, count in sql_rows:
        assert native[tick][0] == count, tick
    # native also reports boundaries where visibility only *dropped*
    assert len(native) >= len(sql_rows)


def test_native_temporal_join_matches_sql(loaded_e):
    sql_count = loaded_e.execute(
        "SELECT count(*)"
        " FROM customer FOR SYSTEM_TIME ALL c,"
        "      orders FOR SYSTEM_TIME ALL o"
        " WHERE c.sys_begin < o.sys_end AND o.sys_begin < c.sys_end"
        "   AND c.c_custkey = o.o_custkey"
    ).scalar()
    native_count = sum(
        1
        for c_row, o_row in loaded_e.temporal_join("customer", "orders")
        if c_row[0] == o_row[1]  # c_custkey == o_custkey
    )
    assert native_count == sql_count


def test_update_workload_keeps_timeline_consistent():
    system = make_system("E")
    db = system.db
    db.execute(
        "CREATE TABLE v (id integer NOT NULL, x integer,"
        " sb timestamp, se timestamp, PRIMARY KEY (id),"
        " PERIOD FOR system_time (sb, se))"
    )
    db.execute("INSERT INTO v (id, x) VALUES (1, 10)")
    db.execute("UPDATE v SET x = 20 WHERE id = 1")
    db.execute("DELETE FROM v WHERE id = 1")
    timeline = db.timeline("v")
    assert timeline.snapshot_rids(1) != set()
    assert timeline.snapshot_rids(99) == set()
    assert db.execute("SELECT count(*) FROM v FOR SYSTEM_TIME AS OF 2").scalar() == 1
