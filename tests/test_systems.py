"""System archetypes: the §5.2 architecture analysis as assertions."""

import pytest

from repro.systems import all_system_names, make_system
from repro.systems.system_a import SystemA


def test_registry():
    assert all_system_names() == ["A", "B", "C", "D"]
    assert isinstance(make_system("a"), SystemA)
    with pytest.raises(ValueError):
        make_system("Z")


def test_system_a_architecture():
    system = make_system("A")
    opts = system.db.default_options
    assert opts.store_kind == "row"
    assert opts.split_history
    assert not opts.vertical_partition_current
    assert not opts.undo_log
    assert system.db.profile.uses_indexes


def test_system_b_architecture():
    system = make_system("B")
    opts = system.db.default_options
    assert opts.vertical_partition_current
    assert opts.undo_log
    assert opts.record_metadata


def test_system_c_architecture():
    system = make_system("C")
    opts = system.db.default_options
    assert opts.store_kind == "column"
    assert not system.db.profile.uses_indexes
    assert not system.db.profile.supports_application_time
    assert not system.native_application_time


def test_system_d_architecture():
    system = make_system("D")
    opts = system.db.default_options
    assert not opts.split_history
    assert system.db.profile.manual_system_time
    assert not system.native_system_time


def test_describe_mentions_key_traits():
    text = make_system("B").describe()
    assert "System B" in text
    assert "vertical partitioning: True" in text


def test_all_systems_accept_same_temporal_sql():
    sql = (
        "CREATE TABLE v (id integer NOT NULL, x integer,"
        " sb timestamp, se timestamp, PRIMARY KEY (id),"
        " PERIOD FOR system_time (sb, se))"
    )
    for name in all_system_names():
        system = make_system(name)
        system.execute(sql)
        system.execute("INSERT INTO v (id, x) VALUES (1, 10)")
        system.execute("UPDATE v SET x = 20 WHERE id = 1")
        now = system.execute("SELECT x FROM v").rows
        past = system.execute("SELECT x FROM v FOR SYSTEM_TIME AS OF 1").rows
        allv = system.execute("SELECT count(*) FROM v FOR SYSTEM_TIME ALL").scalar()
        assert now == [(20,)], name
        assert past == [(10,)], name
        assert allv == 2, name


def test_connect_returns_dbapi_connection():
    system = make_system("A")
    conn = system.connect()
    cur = conn.cursor()
    cur.execute("CREATE TABLE z (a integer)")
    cur.execute("INSERT INTO z (a) VALUES (1)")
    cur.execute("SELECT a FROM z")
    assert cur.fetchall() == [(1,)]
