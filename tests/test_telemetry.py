"""Workload telemetry: fingerprints, statement store, OpenMetrics."""

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.engine import Database
from repro.engine.obs import COUNTERS, HISTOGRAMS, MetricsRegistry
from repro.engine.obs.telemetry import (
    STATEMENT_FIELDS,
    STATEMENT_METRICS,
    StatementStatsStore,
    counter_family,
    fingerprint,
    histogram_family,
    normalize_statement,
    render_openmetrics,
    validate_openmetrics,
)
from repro.engine.plan.context import ResourceCounters

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE n (v integer NOT NULL, PRIMARY KEY (v))")
    for i in range(50):
        database.execute("INSERT INTO n (v) VALUES (?)", [i])
    database.enable_telemetry()
    return database


# -- fingerprinting ---------------------------------------------------------


class TestFingerprint:
    def test_literals_collapse_to_placeholder(self):
        a = normalize_statement("SELECT v FROM n WHERE v = 7")
        b = normalize_statement("SELECT v FROM n WHERE v = 42")
        assert a == b
        assert "?" in a
        assert "7" not in a

    def test_case_and_whitespace_fold(self):
        assert fingerprint("SELECT  v  FROM n")[0] == fingerprint(
            "select v from n"
        )[0]

    def test_string_literals_and_params_collapse(self):
        a = normalize_statement("SELECT v FROM n WHERE v = ?")
        b = normalize_statement("SELECT v FROM n WHERE v = 'x'")
        assert a == b

    def test_different_shapes_differ(self):
        assert fingerprint("SELECT v FROM n")[0] != fingerprint(
            "SELECT v FROM n WHERE v = 1"
        )[0]

    def test_untokenizable_text_falls_back_to_folding(self):
        # '#' is not a lexer token; the fallback must still normalize case
        # and whitespace instead of raising
        normalized = normalize_statement("SELECT   # broken")
        assert normalized == "select # broken"

    def test_hash_is_stable_and_short(self):
        fp, normalized = fingerprint("SELECT v FROM n")
        assert len(fp) == 12
        assert int(fp, 16) >= 0  # hex digits
        assert fingerprint("SELECT v FROM n") == (fp, normalized)


# -- the statement store ----------------------------------------------------


class TestStatementStatsStore:
    def test_record_accumulates_per_shape(self):
        store = StatementStatsStore(enabled=True)
        store.record("SELECT v FROM n WHERE v = 1", 0.010, rows=1, cache_hit=False)
        store.record("SELECT v FROM n WHERE v = 2", 0.030, rows=1, cache_hit=True)
        assert len(store) == 1
        (row,) = store.snapshot()
        assert row["calls"] == 2
        assert row["rows"] == 2
        assert abs(row["time_total_s"] - 0.040) < 1e-9
        assert row["time_min_s"] == 0.010
        assert row["time_max_s"] == 0.030
        assert row["cache_hits"] == 1
        assert row["cache_misses"] == 1
        assert row["cache_hit_ratio"] == 0.5

    def test_snapshot_rows_carry_exactly_the_declared_fields(self):
        store = StatementStatsStore(enabled=True)
        store.record("SELECT v FROM n", 0.001)
        (row,) = store.snapshot()
        assert set(row) == set(STATEMENT_FIELDS)

    def test_lru_eviction_drops_cold_entries(self):
        store = StatementStatsStore(capacity=2, enabled=True)
        store.record("SELECT v FROM n", 0.001)
        store.record("SELECT count(*) FROM n", 0.001)
        store.record("SELECT v FROM n", 0.001)  # refresh: count(*) is now cold
        store.record("INSERT INTO n (v) VALUES (1)", 0.001)
        assert len(store) == 2
        assert store.evicted == 1
        queries = {row["query"] for row in store.snapshot()}
        assert any("insert" in q for q in queries)
        assert any("select v" in q for q in queries)
        assert not any("count" in q for q in queries)

    def test_timeout_and_abort_counters(self):
        store = StatementStatsStore(enabled=True)
        store.record("SELECT v FROM n", 0.5, timed_out=True)
        store.record("SELECT v FROM n", 0.1, aborted=True)
        (row,) = store.snapshot()
        assert row["timeouts"] == 1
        assert row["aborts"] == 1
        assert row["calls"] == 2

    def test_resource_counters_fold_in(self):
        store = StatementStatsStore(enabled=True)
        resources = ResourceCounters()
        resources.rows_scanned = 100
        resources.batches = 3
        resources.peak_ws_bytes = 4096
        store.record("SELECT v FROM n", 0.001, resources=resources)
        smaller = ResourceCounters()
        smaller.rows_scanned = 10
        smaller.batches = 1
        smaller.peak_ws_bytes = 512
        store.record("SELECT v FROM n", 0.001, resources=smaller)
        (row,) = store.snapshot()
        assert row["rows_scanned"] == 110
        assert row["batches"] == 4
        assert row["peak_ws_bytes"] == 4096  # peak, not sum

    def test_note_diagnostics_only_touches_existing_entries(self):
        store = StatementStatsStore(enabled=True)
        store.note_diagnostics("SELECT v FROM n", 2)  # never executed
        assert len(store) == 0
        store.record("SELECT v FROM n", 0.001)
        store.note_diagnostics("SELECT v FROM n", 2)
        (row,) = store.snapshot()
        assert row["diagnostics"] == 2

    def test_snapshot_sort_keys(self):
        store = StatementStatsStore(enabled=True)
        store.record("SELECT v FROM n", 0.001, rows=100)
        store.record("SELECT count(*) FROM n", 0.050, rows=1)
        store.record("SELECT count(*) FROM n", 0.050, rows=1)
        by_time = store.snapshot(sort="time")
        assert "count" in by_time[0]["query"]
        by_rows = store.snapshot(sort="rows")
        assert "select v" in by_rows[0]["query"]
        by_calls = store.snapshot(sort="calls")
        assert by_calls[0]["calls"] == 2
        assert store.snapshot(top=1, sort="time") == by_time[:1]

    def test_unknown_sort_raises(self):
        with pytest.raises(ValueError, match="unknown sort"):
            StatementStatsStore(enabled=True).snapshot(sort="mean")

    def test_reset_keeps_enabled_flag(self):
        store = StatementStatsStore(enabled=True)
        store.record("SELECT v FROM n", 0.001)
        store.reset()
        assert len(store) == 0
        assert store.evicted == 0
        assert store.enabled

    def test_concurrent_records_are_not_lost(self):
        store = StatementStatsStore(enabled=True)

        def worker():
            for i in range(200):
                store.record(f"SELECT v FROM n WHERE v = {i % 3}", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        rows = store.snapshot()
        assert len(rows) == 1  # literals collapse to one shape
        assert rows[0]["calls"] == 800


# -- engine integration -----------------------------------------------------


class TestEngineTelemetry:
    def test_disabled_by_default(self):
        database = Database()
        assert not database.telemetry.enabled
        database.execute("CREATE TABLE t (v integer NOT NULL, PRIMARY KEY (v))")
        database.execute("SELECT v FROM t")
        assert len(database.telemetry) == 0

    def test_one_row_per_query_shape(self, db):
        for i in range(6):
            db.execute("SELECT v FROM n WHERE v = ?", [i])
        db.execute("SELECT count(*) FROM n")
        rows = db.telemetry.snapshot()
        by_query = {row["query"]: row for row in rows}
        shape = "select v from n where v = ?"
        assert by_query[shape]["calls"] == 6
        assert by_query["select count (*) from n"]["calls"] == 1

    def test_cache_hits_and_resources_recorded(self, db):
        db.execute("SELECT v FROM n WHERE v < 25")
        db.execute("SELECT v FROM n WHERE v < 25")
        (row,) = [
            r for r in db.telemetry.snapshot() if "v < ?" in r["query"]
        ]
        assert row["cache_misses"] == 1
        assert row["cache_hits"] == 1
        assert row["rows_scanned"] > 0
        assert row["batches"] > 0
        assert row["peak_ws_bytes"] > 0
        assert row["time_total_s"] > 0

    def test_timeout_is_classified(self, db):
        from repro.engine.errors import QueryTimeout

        with pytest.raises(QueryTimeout):
            db.execute("SELECT a.v FROM n a, n b, n c", timeout_s=0.0)
        rows = [r for r in db.telemetry.snapshot() if r["timeouts"]]
        assert rows and rows[0]["aborts"] == 0

    def test_snapshot_api_shape(self, db):
        db.execute("SELECT v FROM n")
        snapshot = db.telemetry_snapshot(top=5)
        assert snapshot["statements_tracked"] >= 1
        assert snapshot["statements_evicted"] == 0
        assert snapshot["statements"][0]["calls"] >= 1
        assert "counters" in snapshot and "histograms" in snapshot


# -- OpenMetrics exposition -------------------------------------------------


class TestOpenMetrics:
    def test_registry_exposition_validates(self):
        registry = MetricsRegistry()
        registry.inc("txn.commits", 3)
        registry.observe("query.execute_s", 0.012)
        text = render_openmetrics(registry)
        assert validate_openmetrics(text) == []
        assert "repro_txn_commits_total 3" in text
        assert "# TYPE repro_query_execute_seconds histogram" in text
        assert 'repro_query_execute_seconds_bucket{le="+Inf"} 1' in text
        assert text.endswith("# EOF\n")

    def test_statement_samples_present_and_valid(self, db):
        db.execute("SELECT v FROM n WHERE v = 1")
        db.execute("SELECT v FROM n WHERE v = 2")
        text = db.openmetrics(top=5)
        assert validate_openmetrics(text) == []
        assert "repro_statements_tracked 1" in text
        assert 'repro_statement_calls_total{fingerprint="' in text
        assert "} 2" in text

    def test_every_declared_family_is_rendered(self, db):
        db.execute("SELECT v FROM n")
        text = db.openmetrics()
        for name in COUNTERS:
            assert f"# TYPE {counter_family(name)} counter" in text
        for name in HISTOGRAMS:
            assert f"# TYPE {histogram_family(name)} histogram" in text
        for family, (kind, _help) in STATEMENT_METRICS.items():
            assert f"# TYPE {family} {kind}" in text

    def test_validator_rejects_malformed_expositions(self):
        assert validate_openmetrics("repro_x_total 1\n")  # no TYPE, no EOF
        errors = validate_openmetrics(
            "# TYPE repro_x counter\nrepro_x_total notanumber\n# EOF\n"
        )
        assert any("bad value" in e for e in errors)
        errors = validate_openmetrics(
            "# TYPE repro_x counter\nrepro_y_total 1\n# EOF\n"
        )
        assert any("no preceding # TYPE" in e for e in errors)
        errors = validate_openmetrics("# TYPE repro_x counter\n\n# EOF\n")
        assert any("blank line" in e for e in errors)
        errors = validate_openmetrics("# TYPE 0bad counter\n# EOF\n")
        assert any("bad metric name" in e for e in errors)
        errors = validate_openmetrics("# TYPE repro_x counter\n")
        assert any("EOF" in e for e in errors)

    def test_label_values_are_escaped(self):
        store = StatementStatsStore(enabled=True)
        store.record('SELECT v FROM n -- "quoted"\ncomment', 0.001)
        registry = MetricsRegistry()
        text = render_openmetrics(registry, store)
        assert validate_openmetrics(text) == []


class TestLintFamilyMappingStaysInSync:
    """tools/engine_lint.py keeps a static copy of the family-name mapping;
    this test is the drift guard its docstring promises."""

    def _lint(self):
        spec = importlib.util.spec_from_file_location(
            "engine_lint_telemetry", REPO_ROOT / "tools" / "engine_lint.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_static_mapping_matches_runtime_mapping(self):
        lint = self._lint()
        for name in COUNTERS:
            assert lint._openmetrics_family(name) == counter_family(name)
        for name in HISTOGRAMS:
            assert lint._openmetrics_family(name, histogram=True) == (
                histogram_family(name)
            )

    def test_every_lint_expected_family_appears_in_a_rendered_exposition(self):
        lint = self._lint()
        registry = MetricsRegistry()
        text = render_openmetrics(registry, StatementStatsStore(enabled=True))
        families, _fields = lint._telemetry_declarations(REPO_ROOT)
        expected = set(families)
        expected.update(lint._openmetrics_family(n) for n in COUNTERS)
        expected.update(
            lint._openmetrics_family(n, histogram=True) for n in HISTOGRAMS
        )
        for family in expected:
            assert f"# TYPE {family} " in text
