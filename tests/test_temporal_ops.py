"""Native temporal operators ≡ the corrected SQL:2011 rewrites.

The equivalence oracle for PR 10's sweep-line temporal aggregation and
period-align join: on every architecture archetype, at every batch size,
the native operators (explicit ``GROUP BY TEMPORAL(...)`` / ``TEMPORAL
JOIN`` dialect and the System E ``temporal-fusion`` rewrite) must return
exactly the rows of the corrected self-join rewrites — byte for byte on
floats.  Also pins the corrected R3 boundary values as a hand-checked
oracle (the begins-only legacy shape provably misses deletion
boundaries), regression-tests the R2 open-version duration clamp, and
covers the align join's NULL/NaN sharp edges (the PR 5 MergeJoin NaN
family).
"""

import math

import pytest

from repro.core.generator import BitemporalDataGenerator, GeneratorConfig
from repro.core.loader import Loader
from repro.core.queries.range_timeslice import QUERIES as R_QUERIES
from repro.core.scenarios import SCENARIOS
from repro.engine.batch import execution_config
from repro.engine.expr import Env
from repro.engine.plan import operators as ops
from repro.engine.types import END_OF_TIME
from repro.systems import make_system

#: degenerate, prime-and-tiny, and larger-than-any-partition batch sizes
SIZES = (1, 7, 1024)

# -- the query pairs under test ---------------------------------------------

AGG_REWRITE = (
    "SELECT b.t, count(*), sum(o.o_totalprice)"
    " FROM (SELECT sys_begin AS t FROM orders FOR SYSTEM_TIME ALL"
    "       UNION SELECT sys_end AS t FROM orders FOR SYSTEM_TIME ALL) b,"
    "      orders FOR SYSTEM_TIME ALL o"
    " WHERE o.sys_begin <= b.t AND o.sys_end > b.t"
    " GROUP BY b.t"
)
AGG_NATIVE = (
    "SELECT TEMPORAL(system_time) AS t, count(*), sum(o_totalprice)"
    " FROM orders FOR SYSTEM_TIME ALL"
    " GROUP BY TEMPORAL(system_time)"
)
JOIN_REWRITE = (
    "SELECT count(*), min(o.o_totalprice), max(c.c_acctbal)"
    " FROM customer FOR SYSTEM_TIME ALL c,"
    "      orders FOR SYSTEM_TIME ALL o"
    " WHERE c.c_custkey = o.o_custkey"
    "   AND c.sys_begin < o.sys_end AND o.sys_begin < c.sys_end"
)
JOIN_NATIVE = (
    "SELECT count(*), min(o.o_totalprice), max(c.c_acctbal)"
    " FROM customer FOR SYSTEM_TIME ALL c"
    " TEMPORAL JOIN orders FOR SYSTEM_TIME ALL o"
    " ON c.c_custkey = o.o_custkey"
)


@pytest.fixture(scope="module")
def systems(tiny_workload):
    loaded = {}
    for name in "ABCDE":
        system = make_system(name)
        Loader(system, tiny_workload).load()
        loaded[name] = system
    return loaded


# -- native ≡ rewrite, all archetypes × batch sizes --------------------------


@pytest.mark.parametrize("name", list("ABCDE"))
def test_native_matches_rewrite_across_batch_sizes(systems, name):
    system = systems[name]
    for rewrite, native in (
        (AGG_REWRITE, AGG_NATIVE),
        (JOIN_REWRITE, JOIN_NATIVE),
    ):
        # sorted: the sweep emits boundary order, the rewrite hash-group
        # order; neither query specifies ORDER BY, so equivalence is of
        # the row multiset (values stay byte-identical)
        with execution_config(size=1, vectorized=False):
            reference = sorted(system.execute(rewrite).rows)
        assert reference, (name, rewrite)
        for size in SIZES:
            for vectorized in (True, False):
                with execution_config(size=size, vectorized=vectorized):
                    got = sorted(system.execute(native).rows)
                    again = sorted(system.execute(rewrite).rows)
                assert got == reference, (name, size, vectorized, native)
                assert again == reference, (name, size, vectorized, rewrite)


def test_explain_shows_native_operators(systems):
    def plan_text(db, sql):
        return "\n".join(line for (line,) in db.execute("EXPLAIN " + sql).rows)

    # explicit dialect syntax lowers natively on every profile
    a = systems["A"].db
    assert "TemporalAggregate" in plan_text(a, AGG_NATIVE)
    assert "TemporalAlignJoin" in plan_text(a, JOIN_NATIVE)
    # the temporal-fusion rule rewrites the SQL:2011 shapes on System E
    e = systems["E"].db
    assert "TemporalAggregate" in plan_text(e, AGG_REWRITE)
    assert "TemporalAlignJoin" in plan_text(e, JOIN_REWRITE)
    # ... and only there: A executes the rewrite as written
    assert "TemporalAggregate" not in plan_text(a, AGG_REWRITE)
    assert "TemporalAlignJoin" not in plan_text(a, JOIN_REWRITE)


def test_benchmark_r3_queries_fuse_on_system_e(systems):
    e = systems["E"].db
    before = e.metrics.counter("plan.temporal_fusions")
    for qid in ("R3a", "R3b"):
        query = next(q for q in R_QUERIES if q.qid == qid)
        plan = "\n".join(
            line for (line,) in e.execute("EXPLAIN " + query.sql).rows
        )
        assert "TemporalAggregate" in plan, qid
    assert e.metrics.counter("plan.temporal_fusions") > before


# -- pinned boundary oracle (satellite 1: the R3 endpoint-union fix) ---------


class TestPinnedBoundaryOracle:
    """Hand-checked values on a four-version history.

    Versions (system time): item 1 [1,3) at 10.0 then [3,∞) at 12.0;
    item 2 [2,4) at 25.0 (deleted at tick 4).  The constant intervals
    and their aggregates follow directly; tick 4 — where the deletion is
    the *only* event — exists solely because the boundary list unions
    both endpoints, which is exactly the R3a/R3b bug this PR fixes.
    """

    ORACLE = [(1, 1, 10.0), (2, 2, 35.0), (3, 2, 37.0), (4, 1, 12.0)]

    REWRITE = (
        "SELECT b.t, count(*), sum(o.price)"
        " FROM (SELECT sb AS t FROM item FOR SYSTEM_TIME ALL"
        "       UNION SELECT se AS t FROM item FOR SYSTEM_TIME ALL) b,"
        "      item FOR SYSTEM_TIME ALL o"
        " WHERE o.sb <= b.t AND o.se > b.t"
        " GROUP BY b.t ORDER BY b.t"
    )
    NATIVE = (
        "SELECT TEMPORAL(system_time) AS t, count(*), sum(price)"
        " FROM item FOR SYSTEM_TIME ALL"
        " GROUP BY TEMPORAL(system_time) ORDER BY t"
    )
    LEGACY_BEGINS_ONLY = (
        "SELECT b.t, count(*), sum(o.price)"
        " FROM (SELECT DISTINCT sb AS t FROM item FOR SYSTEM_TIME ALL) b,"
        "      item FOR SYSTEM_TIME ALL o"
        " WHERE o.sb <= b.t AND o.se > b.t"
        " GROUP BY b.t ORDER BY b.t"
    )

    def _populate(self, db):
        db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES"
            " (1, 'a', 10.0, DATE '1995-01-01', DATE '1996-01-01')"
        )
        db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES"
            " (2, 'b', 25.0, DATE '1995-01-01', DATE '1996-01-01')"
        )
        db.execute("UPDATE item SET price = 12.0 WHERE id = 1")
        db.execute("DELETE FROM item WHERE id = 2")

    def test_corrected_rewrite_matches_oracle(self, db):
        self._populate(db)
        assert db.execute(self.REWRITE).rows == self.ORACLE

    def test_native_sweep_matches_oracle_byte_for_byte(self, db):
        self._populate(db)
        for size in SIZES:
            for vectorized in (True, False):
                with execution_config(size=size, vectorized=vectorized):
                    assert db.execute(self.NATIVE).rows == self.ORACLE

    def test_legacy_begins_only_shape_misses_the_deletion_boundary(self, db):
        # the pre-fix R3 formulation: no tick-4 row, because no version
        # *begins* there — the bug satellite 1 corrects
        self._populate(db)
        assert db.execute(self.LEGACY_BEGINS_ONLY).rows == self.ORACLE[:-1]

    def test_open_versions_never_aggregate_at_end_of_time(self, db):
        # item 1's open version contributes the END_OF_TIME boundary to
        # the union, but nothing is active there (half-open periods), so
        # neither formulation emits a row for it
        self._populate(db)
        for sql in (self.REWRITE, self.NATIVE):
            assert all(t < END_OF_TIME for (t, _, _) in db.execute(sql).rows)


# -- R2 regression (satellite 2: open-version duration clamp) ----------------


class TestR2OpenVersionClamp:
    def test_current_inclusive_bind_skips_open_versions(
        self, systems, tiny_workload
    ):
        system = systems["A"]
        r2 = next(q for q in R_QUERIES if q.qid == "R2")
        bind = dict(r2.bind(tiny_workload.meta))
        # a current-inclusive bind: the WHERE now admits open versions,
        # whose sys_end is the END_OF_TIME sentinel
        bind["sys_end"] = END_OF_TIME + 1
        got = {status: (count, avg) for status, count, avg in
               system.execute(r2.sql, bind).rows}
        raw = system.execute(
            "SELECT o_orderstatus, sys_begin, sys_end"
            " FROM orders FOR SYSTEM_TIME ALL"
        ).rows
        assert any(se == END_OF_TIME for _, _, se in raw)
        expected = {}
        for status in {r[0] for r in raw}:
            closed = [se - sb for s, sb, se in raw
                      if s == status and se < END_OF_TIME]
            count = sum(1 for s, _, _ in raw if s == status)
            expected[status] = (count, sum(closed) / len(closed)
                                if closed else None)
        assert got == expected
        # pre-fix behaviour: avg(sys_end - sys_begin) over open versions
        # produced astronomical durations
        assert all(avg is None or avg < END_OF_TIME / 2
                   for _, avg in got.values())

    def test_default_bind_unchanged_by_the_clamp(self, systems, tiny_workload):
        # the default bind (< last_tick) never admits open versions, so
        # the CASE clamp must be a no-op there
        system = systems["A"]
        r2 = next(q for q in R_QUERIES if q.qid == "R2")
        bind = r2.bind(tiny_workload.meta)
        unclamped = (
            "SELECT o_orderstatus, count(*), avg(sys_end - sys_begin)"
            " FROM orders FOR SYSTEM_TIME ALL"
            " WHERE sys_end < :sys_end"
            " GROUP BY o_orderstatus"
        )
        assert sorted(system.execute(r2.sql, bind).rows) == sorted(
            system.execute(unclamped, bind).rows
        )


# -- align join NULL/NaN sharp edges (satellite 3) ---------------------------


NAN = float("nan")


def col(i):
    return lambda row, env: row[i]


def _canon(rows):
    return [
        tuple("NaN" if isinstance(v, float) and math.isnan(v) else v
              for v in row)
        for row in rows
    ]


class TestAlignJoinNullNanBounds:
    # (key, begin, end): NULL/NaN keys and period bounds must drop the
    # row during collection — never poison run detection or loop
    LEFT = [(1, 10, 20), (1, None, 30), (1, 5, None), (2, NAN, 9),
            (1, 15, 25)]
    RIGHT = [(1, 12, 22), (1, None, None), (None, 0, 100), (1, 18, NAN)]

    def _make(self):
        return ops.TemporalAlignJoin(
            ops.Materialized(list(self.LEFT)),
            ops.Materialized(list(self.RIGHT)),
            [col(0)], [col(0)], col(1), col(2), col(1), col(2),
        )

    def test_null_nan_rows_match_nothing(self):
        rows = self._make().rows(Env({}))
        # only (1,10,20) and (1,15,25) vs (1,12,22) survive collection
        assert sorted(rows) == [
            (1, 10, 20, 1, 12, 22, 12, 20),
            (1, 15, 25, 1, 12, 22, 15, 22),
        ]

    def test_identical_across_batch_configs(self):
        with execution_config(size=1, vectorized=False):
            reference = _canon(self._make().rows(Env({})))
        for size in SIZES:
            for vectorized in (True, False):
                with execution_config(size=size, vectorized=vectorized):
                    assert _canon(self._make().rows(Env({}))) == reference

    def test_null_application_period_end_in_sql(self, db):
        # a row whose app_end is NULL joins nothing, and the query
        # terminates — the failing-first case for the run-detection audit
        db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES"
            " (1, 'open', 1, DATE '1995-01-01', NULL)"
        )
        db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES"
            " (2, 'closed', 2, DATE '1995-01-01', DATE '1996-01-01')"
        )
        result = db.execute(
            "SELECT l.id, r.id"
            " FROM item FOR SYSTEM_TIME ALL l"
            " TEMPORAL JOIN item FOR SYSTEM_TIME ALL r"
            " ON l.price = r.price OVERLAPS (business_time)"
        )
        assert result.rows == [(2, 2)] or sorted(result.rows) == [(2, 2)]


class TestTemporalAggregateNullNanBounds:
    def test_malformed_intervals_contribute_boundaries_not_events(self):
        # rows: (begin, end, value); NULL/NaN endpoints and empty or
        # inverted intervals never enter the active set
        rows = [(1, 5, 10.0), (None, 7, 99.0), (3, NAN, 99.0),
                (4, 4, 99.0), (6, 2, 99.0), (2, 6, 20.0)]
        op = ops.TemporalAggregate(
            ops.Materialized(rows), col(0), col(1),
            [("count", None, False), ("sum", col(2), False)],
        )
        got = op.rows(Env({}))
        # boundaries {1,2,3,4,5,6,7}: only [1,5)@10 and [2,6)@20 active
        assert got == [
            (1, 1, 10.0), (2, 2, 30.0), (3, 2, 30.0), (4, 2, 30.0),
            (5, 1, 20.0),
        ]


# -- all nine Table 1 scenarios (satellite 4) --------------------------------


@pytest.mark.parametrize("scenario", [s.name for s in SCENARIOS])
def test_scenario_sweep_native_matches_rewrite(scenario, monkeypatch):
    """Each scenario produces a distinct version-history shape (pure
    inserts, deletions, in-place updates, retroactive manipulation);
    the native operators must agree with the rewrites on every one."""
    from repro.core import generator as generator_module

    forced = next(s for s in SCENARIOS if s.name == scenario)
    monkeypatch.setattr(
        generator_module, "pick_scenario", lambda rng: forced
    )
    workload = BitemporalDataGenerator(
        GeneratorConfig(h=0.0002, m=0.00005)
    ).generate()
    for name in ("A", "E"):
        system = make_system(name)
        Loader(system, workload).load()
        assert sorted(system.execute(AGG_NATIVE).rows) == sorted(
            system.execute(AGG_REWRITE).rows
        ), (scenario, name, "aggregate")
        assert sorted(system.execute(JOIN_NATIVE).rows) == sorted(
            system.execute(JOIN_REWRITE).rows
        ), (scenario, name, "join")
