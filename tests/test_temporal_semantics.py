"""Bitemporal DML semantics: visibility, sequenced updates/deletes.

Includes property-based tests of the core invariant: at any (system time,
application time) point, at most one version of a key is visible, and the
visible value is the one written by the latest sequenced operation whose
portion covers the application point.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import temporal
from repro.engine.catalog import Column, PeriodDef, TableSchema
from repro.engine.errors import IntegrityError
from repro.engine.storage.versioned import StorageOptions, VersionedTable
from repro.engine.types import Period, SqlType


def _schema():
    return TableSchema(
        "t",
        [
            Column("id", SqlType.INTEGER, nullable=False),
            Column("v", SqlType.INTEGER),
            Column("ab", SqlType.DATE),
            Column("ae", SqlType.DATE),
            Column("sb", SqlType.TIMESTAMP),
            Column("se", SqlType.TIMESTAMP),
        ],
        primary_key=("id",),
        periods=[
            PeriodDef("app", "ab", "ae"),
            PeriodDef("system_time", "sb", "se", is_system=True),
        ],
    )


def _table():
    return VersionedTable(_schema(), StorageOptions())


def _insert(table, key, value, ab, ae, tick):
    return temporal.temporal_insert(table, [key, value, ab, ae, None, None], tick)


class TestVisibility:
    def test_visible_at(self):
        table = _table()
        _insert(table, 1, 10, 0, 100, tick=5)
        row = next(iter(table.scan_current()))[1]
        assert temporal.visible_at(table.schema, row, 5)
        assert temporal.visible_at(table.schema, row, 999)
        assert not temporal.visible_at(table.schema, row, 4)

    def test_snapshot_rows_implicit_current(self):
        table = _table()
        rid = _insert(table, 1, 10, 0, 100, tick=1)
        table.invalidate(rid, 3)
        _insert(table, 1, 20, 0, 100, tick=3)
        rows = list(temporal.snapshot_rows(table, None))
        assert [r[1] for r in rows] == [20]

    def test_snapshot_rows_past(self):
        table = _table()
        rid = _insert(table, 1, 10, 0, 100, tick=1)
        table.invalidate(rid, 3)
        _insert(table, 1, 20, 0, 100, tick=3)
        rows = list(temporal.snapshot_rows(table, 2))
        assert [r[1] for r in rows] == [10]

    def test_snapshot_single_table_current(self):
        table = VersionedTable(_schema(), StorageOptions(split_history=False))
        rid = _insert(table, 1, 10, 0, 100, tick=1)
        table.invalidate(rid, 3)
        _insert(table, 1, 20, 0, 100, tick=3)
        rows = list(temporal.snapshot_rows(table, None))
        assert [r[1] for r in rows] == [20]


class TestSequencedUpdate:
    def test_middle_portion_splits_into_three(self):
        table = _table()
        _insert(table, 1, 10, 0, 100, tick=1)
        affected = temporal.sequenced_update(
            table, (1,), {"v": 99}, "app", Period(30, 60), tick=2
        )
        assert affected == 1
        rows = sorted(
            ((r[2], r[3], r[1]) for r in temporal.snapshot_rows(table, None))
        )
        assert rows == [(0, 30, 10), (30, 60, 99), (60, 100, 10)]

    def test_covering_portion_replaces(self):
        table = _table()
        _insert(table, 1, 10, 20, 40, tick=1)
        temporal.sequenced_update(table, (1,), {"v": 99}, "app", Period(0, 100), tick=2)
        rows = [(r[2], r[3], r[1]) for r in temporal.snapshot_rows(table, None)]
        assert rows == [(20, 40, 99)]

    def test_disjoint_portion_noop(self):
        table = _table()
        _insert(table, 1, 10, 0, 10, tick=1)
        affected = temporal.sequenced_update(
            table, (1,), {"v": 99}, "app", Period(50, 60), tick=2
        )
        assert affected == 0

    def test_old_version_archived_with_close_tick(self):
        table = _table()
        _insert(table, 1, 10, 0, 100, tick=1)
        temporal.sequenced_update(table, (1,), {"v": 99}, "app", Period(0, 50), tick=7)
        history = [row for _rid, row in table.scan_history()]
        assert len(history) == 1
        assert history[0][5] == 7  # sys_end


class TestSequencedDelete:
    def test_remainders_survive(self):
        table = _table()
        _insert(table, 1, 10, 0, 100, tick=1)
        affected = temporal.sequenced_delete(table, (1,), "app", Period(40, 60), tick=2)
        assert affected == 1
        rows = sorted((r[2], r[3]) for r in temporal.snapshot_rows(table, None))
        assert rows == [(0, 40), (60, 100)]

    def test_full_cover_removes_key(self):
        table = _table()
        _insert(table, 1, 10, 0, 100, tick=1)
        temporal.sequenced_delete(table, (1,), "app", Period(0, 100), tick=2)
        assert list(temporal.snapshot_rows(table, None)) == []
        # but the version is still in the history
        assert table.history_count() == 1


class TestNontemporalUpdate:
    def test_all_app_versions_rewritten(self):
        table = _table()
        _insert(table, 1, 10, 0, 50, tick=1)
        _insert(table, 1, 11, 50, 100, tick=1)
        affected = temporal.nontemporal_update(table, (1,), {"v": 7}, tick=2)
        assert affected == 2
        values = sorted(r[1] for r in temporal.snapshot_rows(table, None))
        assert values == [7, 7]
        # app periods unchanged
        periods = sorted((r[2], r[3]) for r in temporal.snapshot_rows(table, None))
        assert periods == [(0, 50), (50, 100)]


class TestDeleteAndAudit:
    def test_temporal_delete_archives_all(self):
        table = _table()
        _insert(table, 1, 10, 0, 50, tick=1)
        _insert(table, 1, 11, 50, 100, tick=1)
        assert temporal.temporal_delete(table, (1,), tick=5) == 2
        assert list(temporal.snapshot_rows(table, None)) == []
        assert len(temporal.key_history(table, (1,))) == 2

    def test_key_history_ordered_by_sys_begin(self):
        table = _table()
        rid = _insert(table, 1, 10, 0, 100, tick=1)
        table.invalidate(rid, 4)
        _insert(table, 1, 20, 0, 100, tick=4)
        history = temporal.key_history(table, (1,))
        assert [row[4] for row in history] == [1, 4]


class TestOverlapConstraint:
    def test_overlapping_insert_rejected(self):
        table = _table()
        temporal.temporal_insert(
            table, [1, 10, 0, 100, None, None], 1, enforce_overlap="app"
        )
        with pytest.raises(IntegrityError):
            temporal.temporal_insert(
                table, [1, 11, 50, 150, None, None], 2, enforce_overlap="app"
            )

    def test_adjacent_insert_allowed(self):
        table = _table()
        temporal.temporal_insert(
            table, [1, 10, 0, 100, None, None], 1, enforce_overlap="app"
        )
        temporal.temporal_insert(
            table, [1, 11, 100, 200, None, None], 2, enforce_overlap="app"
        )
        assert len(list(temporal.snapshot_rows(table, None))) == 2


# ---------------------------------------------------------------------------
# property-based invariants
# ---------------------------------------------------------------------------

operations = st.lists(
    st.tuples(
        st.integers(1, 3),            # key
        st.integers(0, 99),           # portion begin
        st.integers(1, 30),           # portion width
        st.integers(0, 1000),         # new value
    ),
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(operations, st.integers(0, 129))
def test_property_no_overlapping_current_versions(ops, probe_day):
    """After any sequence of sequenced updates, the current application-time
    versions of a key never overlap, and their union is exactly the original
    insert period."""
    table = _table()
    for key in (1, 2, 3):
        _insert(table, key, 0, 0, 130, tick=1)
    tick = 2
    for key, begin, width, value in ops:
        temporal.sequenced_update(
            table, (key,), {"v": value}, "app", Period(begin, begin + width), tick
        )
        tick += 1
    for key in (1, 2, 3):
        rows = [
            row
            for row in temporal.snapshot_rows(table, None)
            if row[0] == key
        ]
        periods = sorted((row[2], row[3]) for row in rows)
        # no overlaps, no gaps, full coverage of [0, 130)
        assert periods[0][0] == 0
        assert periods[-1][1] == 130
        for (b1, e1), (b2, e2) in zip(periods, periods[1:]):
            assert e1 == b2, periods
        # at most one version covers the probe day
        covering = [p for p in periods if p[0] <= probe_day < p[1]]
        assert len(covering) == 1


@settings(max_examples=40, deadline=None)
@given(operations)
def test_property_last_write_wins_at_app_point(ops):
    """The visible value at an application point equals the latest portion
    write covering it (model-checked against a simple day-array)."""
    table = _table()
    _insert(table, 1, 0, 0, 130, tick=1)
    model = [0] * 130
    tick = 2
    for _key, begin, width, value in ops:
        temporal.sequenced_update(
            table, (1,), {"v": value}, "app", Period(begin, begin + width), tick
        )
        for day in range(begin, min(begin + width, 130)):
            model[day] = value
        tick += 1
    rows = [row for row in temporal.snapshot_rows(table, None) if row[0] == 1]
    for row in rows:
        for day in range(row[2], row[3]):
            assert model[day] == row[1], (day, row)


@settings(max_examples=30, deadline=None)
@given(operations)
def test_property_history_is_append_only(ops):
    """Versions never disappear: every operation only adds to the total
    version count (current + history)."""
    table = _table()
    _insert(table, 1, 0, 0, 130, tick=1)
    _insert(table, 2, 0, 0, 130, tick=1)
    previous_total = len(table)
    tick = 2
    for key, begin, width, value in ops:
        key = 1 + (key % 2)
        temporal.sequenced_update(
            table, (key,), {"v": value}, "app", Period(begin, begin + width), tick
        )
        assert len(table) >= previous_total
        previous_total = len(table)
        tick += 1
