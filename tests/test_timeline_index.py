"""Timeline Index tests (the System E substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.index.timeline import TimelineIndex


class TestBasics:
    def test_snapshot_half_open(self):
        timeline = TimelineIndex()
        timeline.activate(1, 5)
        timeline.invalidate(1, 9)
        assert timeline.snapshot_rids(4) == set()
        assert timeline.snapshot_rids(5) == {1}
        assert timeline.snapshot_rids(8) == {1}
        assert timeline.snapshot_rids(9) == set()

    def test_events_must_be_ordered(self):
        timeline = TimelineIndex()
        timeline.activate(1, 5)
        with pytest.raises(ValueError):
            timeline.activate(2, 4)

    def test_same_tick_events_allowed(self):
        timeline = TimelineIndex()
        timeline.activate(1, 3)
        timeline.invalidate(1, 3)
        timeline.activate(2, 3)
        assert timeline.snapshot_rids(3) == {2}

    def test_checkpoint_interval_validation(self):
        with pytest.raises(ValueError):
            TimelineIndex(checkpoint_interval=0)

    def test_checkpoints_created(self):
        timeline = TimelineIndex(checkpoint_interval=10)
        for i in range(35):
            timeline.activate(i, i + 1)
        assert timeline.checkpoint_count == 3

    def test_boundaries(self):
        timeline = TimelineIndex()
        timeline.activate(1, 2)
        timeline.activate(2, 2)
        timeline.invalidate(1, 7)
        assert timeline.boundaries() == [2, 7]

    def test_sweep(self):
        timeline = TimelineIndex()
        timeline.activate(1, 2)
        timeline.activate(2, 4)
        timeline.invalidate(1, 6)
        states = [(tick, set(rids)) for tick, rids in timeline.sweep()]
        assert states == [(2, {1}), (4, {1, 2}), (6, {2})]


class TestTemporalAggregate:
    def test_count_sum_avg(self):
        timeline = TimelineIndex()
        values = {1: 10.0, 2: 30.0}
        timeline.activate(1, 2)
        timeline.activate(2, 5)
        timeline.invalidate(1, 8)
        out = timeline.temporal_aggregate(values.get, ("count", "sum", "avg"))
        assert out == [
            (2, (1, 10.0, 10.0)),
            (5, (2, 40.0, 20.0)),
            (8, (1, 30.0, 30.0)),
        ]

    def test_unsupported_function(self):
        with pytest.raises(ValueError):
            TimelineIndex().temporal_aggregate(lambda r: 0, ("median",))

    def test_empty_group_yields_none_sum(self):
        timeline = TimelineIndex()
        timeline.activate(1, 1)
        timeline.invalidate(1, 2)
        out = timeline.temporal_aggregate(lambda r: 1.0, ("sum",))
        assert out[-1] == (2, (None,))


class TestTemporalJoin:
    def test_overlapping_pairs(self):
        left = TimelineIndex()
        right = TimelineIndex()
        left.activate(1, 1)
        left.invalidate(1, 5)
        right.activate(7, 3)
        right.activate(8, 6)
        pairs = set(left.temporal_join_pairs(right))
        assert pairs == {(1, 7)}  # rid 8 starts after rid 1 ended

    def test_pairs_not_duplicated(self):
        left = TimelineIndex()
        right = TimelineIndex()
        left.activate(1, 1)
        right.activate(2, 2)
        right.invalidate(2, 3)
        right.activate(2, 4)  # same rid visible again
        pairs = list(left.temporal_join_pairs(right))
        assert pairs == [(1, 2)]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 60), st.integers(1, 15)),  # (begin, duration)
        max_size=60,
    ),
    st.integers(0, 80),
    st.integers(1, 16),
)
def test_property_snapshot_matches_bruteforce(intervals, probe, interval_size):
    """Checkpointed snapshots agree with direct interval arithmetic at any
    probe tick and any checkpoint interval."""
    events = []
    for rid, (begin, duration) in enumerate(intervals):
        events.append((begin, "a", rid))
        events.append((begin + duration, "i", rid))
    events.sort(key=lambda e: e[0])
    timeline = TimelineIndex(checkpoint_interval=interval_size)
    for tick, kind, rid in events:
        if kind == "a":
            timeline.activate(rid, tick)
        else:
            timeline.invalidate(rid, tick)
    expected = {
        rid
        for rid, (begin, duration) in enumerate(intervals)
        if begin <= probe < begin + duration
    }
    assert timeline.snapshot_rids(probe) == expected


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 40), st.integers(1, 10), st.integers(0, 100)),
        max_size=40,
    )
)
def test_property_temporal_aggregate_matches_bruteforce(rows):
    events = []
    values = {}
    for rid, (begin, duration, value) in enumerate(rows):
        values[rid] = float(value)
        events.append((begin, "a", rid))
        events.append((begin + duration, "i", rid))
    events.sort(key=lambda e: e[0])
    timeline = TimelineIndex(checkpoint_interval=7)
    for tick, kind, rid in events:
        (timeline.activate if kind == "a" else timeline.invalidate)(rid, tick)
    out = dict(timeline.temporal_aggregate(values.get, ("count", "sum")))
    for tick in timeline.boundaries():
        visible = {
            rid
            for rid, (begin, duration, _v) in enumerate(rows)
            if begin <= tick < begin + duration
        }
        count, total = out[tick]
        assert count == len(visible)
        if visible:
            assert abs(total - sum(values[r] for r in visible)) < 1e-6
        else:
            assert total is None
