"""TPC-H class H: template rendering and execution in all three modes."""

import pytest

from repro.core.loader import Loader, load_nontemporal_baseline
from repro.core.queries import tpch
from repro.engine import Database
from repro.engine.sql import parse_statement
from repro.systems import make_system


def test_all_22_present():
    assert tpch.all_numbers() == list(range(1, 23))


@pytest.mark.parametrize("number", tpch.all_numbers())
@pytest.mark.parametrize("mode", ["plain", "app", "sys"])
def test_templates_parse(number, mode):
    parse_statement(tpch.tpch_query(number, mode))


def test_mode_substitution():
    plain = tpch.tpch_query(1, "plain")
    app = tpch.tpch_query(1, "app")
    sys_q = tpch.tpch_query(1, "sys")
    assert "FOR" not in plain.upper().replace("FORMAT", "")
    assert "FOR BUSINESS_TIME AS OF :app_tt" in app
    assert "FOR SYSTEM_TIME AS OF :sys_tt" in sys_q


def test_unversioned_tables_never_clause():
    q5 = tpch.tpch_query(5, "sys")
    assert "region FOR" not in q5
    assert "nation FOR" not in q5
    # supplier has no application period: untouched in app mode
    q5_app = tpch.tpch_query(5, "app")
    assert "supplier FOR" not in q5_app


def test_params_per_mode(tiny_workload):
    assert tpch.tpch_params(tiny_workload.meta, "plain") == {}
    assert "app_tt" in tpch.tpch_params(tiny_workload.meta, "app")
    assert tpch.tpch_params(tiny_workload.meta, "sys")["sys_tt"] == (
        tiny_workload.meta.initial_tick
    )


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        tpch.tpch_query(1, "bogus")


@pytest.fixture(scope="module")
def baseline(tiny_workload):
    db = Database()
    load_nontemporal_baseline(db, tiny_workload, version="initial")
    return db


@pytest.fixture(scope="module")
def system_a(tiny_workload):
    system = make_system("A")
    Loader(system, tiny_workload).load()
    return system


@pytest.mark.parametrize("number", tpch.all_numbers())
def test_queries_run_on_baseline(number, baseline):
    result = baseline.execute(tpch.tpch_query(number, "plain"))
    assert result.rows is not None


@pytest.mark.parametrize("number", tpch.all_numbers())
def test_sys_mode_reproduces_initial_state(number, baseline, system_a, tiny_workload):
    """AS OF the pre-history tick must equal the plain run on the initial
    snapshot — the exact setup of Fig 7(b)."""
    plain_rows = baseline.execute(tpch.tpch_query(number, "plain")).rows
    sys_rows = system_a.execute(
        tpch.tpch_query(number, "sys"),
        tpch.tpch_params(tiny_workload.meta, "sys"),
    ).rows
    assert _normalise(plain_rows) == _normalise(sys_rows), f"Q{number}"


def _normalise(rows):
    out = []
    for row in rows:
        out.append(tuple(
            round(v, 4) if isinstance(v, float) else v for v in row
        ))
    return out


def test_as_benchmark_queries():
    queries = tpch.as_benchmark_queries("sys")
    assert len(queries) == 22
    assert queries[0].qid == "H1.sys"
    assert queries[0].group == "H"
