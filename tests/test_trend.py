"""Trend store: artifact folding, sparklines, trajectory reports."""

import json

import pytest

from repro.bench.artifact import ArtifactError, find_artifacts, write_artifact
from repro.bench.trend import (
    TREND_SCHEMA,
    fold_artifacts,
    fold_directory,
    format_trend_summary,
    markdown_report,
    sparkline,
    write_trend,
)

def make_artifact(cells, created=None):
    """A minimal repro-bench/v1 artifact from (qid, system, setting, fields)."""
    measurements = [
        {
            "qid": qid,
            "system": system,
            "setting": setting,
            "median_s": fields.get("median_s"),
            "timed_out": fields.get("timed_out", False),
        }
        for qid, system, setting, fields in cells
    ]
    generator = {"tool": "repro bench"}
    if created is not None:
        generator["created_unix"] = created
    return {
        "schema": "repro-bench/v1",
        "generator": generator,
        "experiments": [{"name": "fig02", "measurements": measurements}],
        "analyzer": {},
    }


def write_series(tmp_path, medians):
    """One artifact file per median value, stamped in order."""
    paths = []
    for index, median in enumerate(medians):
        artifact = make_artifact(
            [("T1", "A", "s", {"median_s": median})], created=1000 + index
        )
        paths.append(write_artifact(tmp_path / f"run{index}.json", artifact))
    return paths


class TestSparkline:
    def test_levels_are_monotonic(self):
        spark = sparkline([0.001, 0.01, 0.1, 1.0])
        assert len(spark) == 4
        assert spark[0] == "▁"
        assert spark[-1] == "█"
        levels = [ord(c) for c in spark]
        assert levels == sorted(levels)

    def test_none_renders_as_space(self):
        assert sparkline([0.1, None, 0.2])[1] == " "

    def test_all_missing(self):
        assert sparkline([None, None]) == "  "

    def test_flat_series(self):
        assert sparkline([0.5, 0.5]) == "▁▁"


class TestFolding:
    def test_fold_builds_series_and_stats(self, tmp_path):
        paths = write_series(tmp_path, [0.100, 0.050, 0.200])
        trend = fold_artifacts(paths)
        assert trend["schema"] == TREND_SCHEMA
        assert [p["source"] for p in trend["points"]] == [
            "run0.json", "run1.json", "run2.json",
        ]
        cell = trend["cells"]["fig02|T1|A|s"]
        assert cell["medians_s"] == [0.100, 0.050, 0.200]
        assert cell["first_s"] == 0.100
        assert cell["last_s"] == 0.200
        assert cell["best_s"] == 0.050
        assert cell["worst_s"] == 0.200
        assert cell["ratio"] == pytest.approx(2.0)
        assert len(cell["spark"]) == 3
        assert trend["systems"]["A"]["last_gm_ratio"] == pytest.approx(2.0)

    def test_timed_out_cells_leave_gaps(self, tmp_path):
        ok = make_artifact([("T1", "A", "s", {"median_s": 0.1})], created=1)
        timeout = make_artifact(
            [("T1", "A", "s", {"median_s": 5.0, "timed_out": True})], created=2
        )
        paths = [
            write_artifact(tmp_path / "a.json", ok),
            write_artifact(tmp_path / "b.json", timeout),
        ]
        cell = fold_artifacts(paths)["cells"]["fig02|T1|A|s"]
        assert cell["medians_s"] == [0.1, None]
        assert cell["last_s"] == 0.1  # last *observed* value

    def test_fold_directory_orders_by_stamp(self, tmp_path):
        # written z-then-a but stamped a-first: stamp order must win
        write_artifact(
            tmp_path / "z.json",
            make_artifact([("T1", "A", "s", {"median_s": 0.2})], created=2000),
        )
        write_artifact(
            tmp_path / "a.json",
            make_artifact([("T1", "A", "s", {"median_s": 0.1})], created=1000),
        )
        assert [p.name for p in find_artifacts(tmp_path)] == ["a.json", "z.json"]
        trend = fold_directory(tmp_path)
        assert trend["cells"]["fig02|T1|A|s"]["medians_s"] == [0.1, 0.2]

    def test_fold_directory_skips_non_artifacts(self, tmp_path):
        write_series(tmp_path, [0.1])
        (tmp_path / "notes.json").write_text('{"schema": "other"}')
        (tmp_path / "broken.json").write_text("{")
        trend = fold_directory(tmp_path)
        assert len(trend["points"]) == 1

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ArtifactError):
            fold_directory(tmp_path)

    def test_single_run_has_no_system_ratios(self, tmp_path):
        paths = write_series(tmp_path, [0.1])
        assert fold_artifacts(paths)["systems"] == {}


class TestOutputs:
    def test_write_trend_into_directory(self, tmp_path):
        paths = write_series(tmp_path, [0.1, 0.2])
        target = write_trend(fold_artifacts(paths), tmp_path)
        assert target.name == "TREND.json"
        reloaded = json.loads(target.read_text())
        assert reloaded["schema"] == TREND_SCHEMA

    def test_markdown_report_shape(self, tmp_path):
        paths = write_series(tmp_path, [0.1, 0.2])
        report = markdown_report(fold_artifacts(paths))
        assert "# Perf trajectory" in report
        assert "## fig02" in report
        assert "`T1|A|s`" in report
        assert "2.00×" in report

    def test_terminal_summary(self, tmp_path):
        paths = write_series(tmp_path, [0.1, 0.2])
        text = format_trend_summary(fold_artifacts(paths))
        assert "Perf trajectory (2 runs)" in text
        assert "fig02|T1|A|s" in text
        assert "system A" in text
