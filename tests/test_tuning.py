"""Index-setting tuning surface (§5.1)."""

import pytest

from repro.core.loader import Loader
from repro.systems import (
    IndexSetting,
    apply_index_setting,
    drop_tuning_indexes,
    make_system,
)


@pytest.fixture
def loaded_a(tiny_workload):
    system = make_system("A")
    Loader(system, tiny_workload).load()
    return system


def test_time_indexes_cover_all_dimensions(loaded_a):
    created = apply_index_setting(loaded_a, IndexSetting.TIME)
    assert created
    names = {i.name for i in loaded_a.db.catalog.indexes()}
    # app-time index on the current customer table + history indexes
    assert any("customer_c_visible_begin_current" in n for n in names)
    assert any("customer_c_visible_begin_history" in n for n in names)
    assert any("customer_sys_begin_history" in n for n in names)
    # no system-time index lands on the current partition of split systems
    assert not any("sys_begin_current" in n for n in names)


def test_key_time_adds_history_key_access(loaded_a):
    apply_index_setting(loaded_a, IndexSetting.KEY_TIME)
    names = {i.name for i in loaded_a.db.catalog.indexes()}
    assert any("customer_c_custkey_history" in n for n in names)


def test_value_index_requires_target(loaded_a):
    with pytest.raises(ValueError):
        apply_index_setting(loaded_a, IndexSetting.VALUE)
    created = apply_index_setting(
        loaded_a, IndexSetting.VALUE,
        value_table="customer", value_column="c_acctbal",
    )
    assert len(created) == 2  # current + history


def test_apply_is_idempotent(loaded_a):
    first = apply_index_setting(loaded_a, IndexSetting.TIME)
    second = apply_index_setting(loaded_a, IndexSetting.TIME)
    assert first == second


def test_drop_tuning_indexes(loaded_a):
    apply_index_setting(loaded_a, IndexSetting.KEY_TIME)
    dropped = drop_tuning_indexes(loaded_a)
    assert dropped > 0
    assert not [i for i in loaded_a.db.catalog.indexes() if i.name.startswith("tune_")]


def test_none_setting_creates_nothing(loaded_a):
    assert apply_index_setting(loaded_a, IndexSetting.NONE) == []


def test_rtree_time_indexes_on_d(tiny_workload):
    system = make_system("D")
    Loader(system, tiny_workload).load()
    created = apply_index_setting(system, IndexSetting.TIME, kind="rtree")
    assert created
    kinds = {i.kind for i in system.db.catalog.indexes() if i.name.startswith("tune_")}
    assert kinds == {"rtree"}
