"""Transaction manager tests: commit-ordered ticks, batching semantics."""

import pytest

from repro.engine.errors import OperationalError
from repro.engine.txn import TransactionManager


def test_ticks_increase_per_commit():
    manager = TransactionManager()
    with manager.begin() as t1:
        assert t1.tick == 1
    with manager.begin() as t2:
        assert t2.tick == 2
    assert manager.last_committed == 2
    assert manager.commit_count == 2


def test_only_one_active_transaction():
    manager = TransactionManager()
    txn = manager.begin()
    with pytest.raises(OperationalError):
        manager.begin()
    txn.commit()
    manager.begin().commit()


def test_rollback_does_not_advance_clock():
    manager = TransactionManager()
    txn = manager.begin()
    txn.rollback()
    assert manager.last_committed == 0
    with manager.begin() as t2:
        assert t2.tick == 1


def test_double_commit_rejected():
    manager = TransactionManager()
    txn = manager.begin()
    txn.commit()
    with pytest.raises(OperationalError):
        txn.commit()
    with pytest.raises(OperationalError):
        txn.rollback()


def test_context_manager_rolls_back_on_error():
    manager = TransactionManager()
    with pytest.raises(RuntimeError):
        with manager.begin():
            raise RuntimeError("boom")
    assert manager.last_committed == 0


def test_set_clock_forward_only():
    manager = TransactionManager()
    manager.set_clock(10)
    assert manager.clock == 10
    with pytest.raises(OperationalError):
        manager.set_clock(5)


def test_current_transaction_visibility():
    manager = TransactionManager()
    assert manager.current() is None
    txn = manager.begin()
    assert manager.current() is txn
    txn.commit()
    assert manager.current() is None
