"""Unit tests for periods, time conversion and NULL-aware comparison."""

import datetime

import pytest

from repro.engine.errors import DataError
from repro.engine.types import (
    ALL_TIME,
    END_OF_TIME,
    Period,
    SqlType,
    compare_values,
    date_to_day,
    day_to_date,
)


class TestPeriod:
    def test_contains_half_open(self):
        period = Period(10, 20)
        assert period.contains(10)
        assert period.contains(19)
        assert not period.contains(20)
        assert not period.contains(9)

    def test_empty_period_rejected(self):
        with pytest.raises(DataError):
            Period(5, 5)
        with pytest.raises(DataError):
            Period(6, 5)

    def test_overlaps_symmetric(self):
        a, b = Period(0, 10), Period(9, 15)
        assert a.overlaps(b) and b.overlaps(a)

    def test_adjacent_periods_do_not_overlap(self):
        assert not Period(0, 10).overlaps(Period(10, 20))

    def test_meets(self):
        assert Period(0, 10).meets(Period(10, 20))
        assert not Period(0, 10).meets(Period(11, 20))

    def test_intersect(self):
        assert Period(0, 10).intersect(Period(5, 15)) == Period(5, 10)
        assert Period(0, 5).intersect(Period(5, 10)) is None

    def test_covers(self):
        assert Period(0, 10).covers(Period(2, 8))
        assert Period(0, 10).covers(Period(0, 10))
        assert not Period(0, 10).covers(Period(2, 11))

    def test_subtract_middle_splits_in_two(self):
        parts = Period(0, 10).subtract(Period(3, 7))
        assert parts == [Period(0, 3), Period(7, 10)]

    def test_subtract_covering_removes_all(self):
        assert Period(3, 7).subtract(Period(0, 10)) == []

    def test_subtract_left_edge(self):
        assert Period(0, 10).subtract(Period(0, 4)) == [Period(4, 10)]

    def test_subtract_right_edge(self):
        assert Period(0, 10).subtract(Period(6, 10)) == [Period(0, 6)]

    def test_subtract_disjoint_is_identity(self):
        assert Period(0, 10).subtract(Period(20, 30)) == [Period(0, 10)]

    def test_open_period(self):
        open_period = Period(5, END_OF_TIME)
        assert open_period.is_open
        assert open_period.duration() == END_OF_TIME
        assert "inf" in str(open_period)

    def test_all_time_covers_everything(self):
        assert ALL_TIME.contains(0)
        assert ALL_TIME.covers(Period(123, 456))


class TestDates:
    def test_epoch_is_day_zero(self):
        assert date_to_day("1992-01-01") == 0

    def test_round_trip(self):
        for iso in ("1995-06-17", "1998-08-02", "1992-02-29"):
            assert day_to_date(date_to_day(iso)).isoformat() == iso

    def test_accepts_date_objects(self):
        assert date_to_day(datetime.date(1992, 1, 2)) == 1

    def test_rejects_non_dates(self):
        with pytest.raises(DataError):
            date_to_day(42)

    def test_end_of_time_has_no_date(self):
        with pytest.raises(DataError):
            day_to_date(END_OF_TIME)


class TestSqlType:
    def test_integer_accepts_int_only(self):
        assert SqlType.INTEGER.validate(5) == 5
        with pytest.raises(DataError):
            SqlType.INTEGER.validate("5")
        with pytest.raises(DataError):
            SqlType.INTEGER.validate(True)

    def test_decimal_coerces_to_float(self):
        assert SqlType.DECIMAL.validate(5) == 5.0
        assert isinstance(SqlType.DECIMAL.validate(5), float)

    def test_varchar(self):
        assert SqlType.VARCHAR.validate("x") == "x"
        with pytest.raises(DataError):
            SqlType.VARCHAR.validate(5)

    def test_null_passes_all_types(self):
        for sql_type in SqlType:
            assert sql_type.validate(None) is None

    def test_boolean(self):
        assert SqlType.BOOLEAN.validate(True) is True
        with pytest.raises(DataError):
            SqlType.BOOLEAN.validate(1)


class TestCompareValues:
    def test_ordinary_ordering(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0

    def test_nulls_sort_last(self):
        assert compare_values(None, 1) == 1
        assert compare_values(1, None) == -1
        assert compare_values(None, None) == 0

    def test_strings(self):
        assert compare_values("a", "b") == -1
