"""VersionedTable tests: all four architecture layouts."""

import pytest

from repro.engine.catalog import Column, IndexDef, PeriodDef, TableSchema
from repro.engine.errors import CatalogError, InternalError
from repro.engine.storage.versioned import CURRENT, HISTORY, SINGLE, StorageOptions, VersionedTable
from repro.engine.types import END_OF_TIME, SqlType


def _schema():
    return TableSchema(
        "t",
        [
            Column("id", SqlType.INTEGER, nullable=False),
            Column("v", SqlType.VARCHAR),
            Column("sb", SqlType.TIMESTAMP),
            Column("se", SqlType.TIMESTAMP),
        ],
        primary_key=("id",),
        periods=[PeriodDef("system_time", "sb", "se", is_system=True)],
    )


def _row(key, value):
    return [key, value, None, None]


class TestSplitLayout:
    def test_insert_sets_system_time(self):
        table = VersionedTable(_schema(), StorageOptions())
        rid = table.insert_version(_row(1, "a"), sys_begin=5)
        row = table.fetch(CURRENT, rid)
        assert row[2] == 5 and row[3] == END_OF_TIME

    def test_invalidate_moves_to_history(self):
        table = VersionedTable(_schema(), StorageOptions())
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        table.invalidate(rid, 7)
        assert table.current_count() == 0
        assert table.history_count() == 1
        history = list(table.scan_history())
        assert history[0][1][3] == 7  # closed sys_end

    def test_pk_map_tracks_current_only(self):
        table = VersionedTable(_schema(), StorageOptions())
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        assert table.current_rids_for_key((1,)) == [rid]
        table.invalidate(rid, 2)
        assert table.current_rids_for_key((1,)) == []

    def test_versioned_insert_requires_tick(self):
        table = VersionedTable(_schema(), StorageOptions())
        with pytest.raises(InternalError):
            table.insert_version(_row(1, "a"))

    def test_scan_versions_spans_partitions(self):
        table = VersionedTable(_schema(), StorageOptions())
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        table.invalidate(rid, 2)
        table.insert_version(_row(1, "b"), sys_begin=2)
        parts = [part for part, _rid, _row in table.scan_versions()]
        assert sorted(parts) == [CURRENT, HISTORY]


class TestSingleTableLayout:
    def test_invalidate_stays_in_place(self):
        table = VersionedTable(_schema(), StorageOptions(split_history=False))
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        table.invalidate(rid, 9)
        assert table.history_count() == 0
        assert len(table) == 1
        assert table.fetch(SINGLE, rid)[3] == 9

    def test_partition_names(self):
        table = VersionedTable(_schema(), StorageOptions(split_history=False))
        assert table.partition_names() == [SINGLE]
        assert table.current_partition_name() == SINGLE


class TestVerticalPartitioning:
    def _table(self):
        return VersionedTable(
            _schema(),
            StorageOptions(split_history=True, vertical_partition_current=True),
        )

    def test_current_store_has_no_temporal_data(self):
        table = self._table()
        rid = table.insert_version(_row(1, "a"), sys_begin=3)
        raw = table.partition(CURRENT).store.fetch(rid)
        assert raw[2] is None and raw[3] is None

    def test_scan_reconstructs_temporal_columns(self):
        table = self._table()
        table.insert_version(_row(1, "a"), sys_begin=3)
        rows = [row for _rid, row in table.scan_current(need_temporal=True)]
        assert rows[0][2] == 3 and rows[0][3] == END_OF_TIME
        assert table.stats.vp_merge_joins == 1

    def test_scan_without_temporal_skips_join(self):
        table = self._table()
        table.insert_version(_row(1, "a"), sys_begin=3)
        list(table.scan_current(need_temporal=False))
        assert table.stats.vp_merge_joins == 0

    def test_reconstruct_for_rids(self):
        table = self._table()
        rids = [table.insert_version(_row(i, "x"), sys_begin=i) for i in range(1, 6)]
        pairs = table.reconstruct_for_rids(rids[1:3])
        assert [row[2] for _rid, row in pairs] == [2, 3]

    def test_requires_split(self):
        with pytest.raises(CatalogError):
            StorageOptions(split_history=False, vertical_partition_current=True)


class TestUndoLog:
    def _table(self, batch=3):
        return VersionedTable(
            _schema(), StorageOptions(undo_log=True, undo_drain_batch=batch)
        )

    def test_invalidations_buffer_until_batch(self):
        table = self._table(batch=3)
        rids = [table.insert_version(_row(i, "x"), sys_begin=1) for i in range(5)]
        table.invalidate(rids[0], 2)
        table.invalidate(rids[1], 2)
        assert len(table.partition(HISTORY)) == 0
        table.invalidate(rids[2], 2)  # triggers the drain
        assert len(table.partition(HISTORY)) == 3
        assert table.stats.undo_drains == 1

    def test_history_scan_forces_drain(self):
        table = self._table(batch=100)
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        table.invalidate(rid, 2)
        rows = list(table.scan_history())
        assert len(rows) == 1
        assert table.history_count() == 1

    def test_history_count_includes_pending(self):
        table = self._table(batch=100)
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        table.invalidate(rid, 2)
        assert table.history_count() == 1


class TestSecondaryIndexes:
    def test_index_maintained_on_insert_and_invalidate(self):
        table = VersionedTable(_schema(), StorageOptions())
        structure = table.create_index(
            IndexDef("iv", "t", ("v",), kind="btree", partition="current")
        )
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        assert structure.search("a") == [rid]
        table.invalidate(rid, 2)
        assert structure.search("a") == []

    def test_history_index_built_from_existing_rows(self):
        table = VersionedTable(_schema(), StorageOptions())
        rid = table.insert_version(_row(1, "a"), sys_begin=1)
        table.invalidate(rid, 2)
        structure = table.create_index(
            IndexDef("ih", "t", ("sb",), kind="btree", partition="history")
        )
        assert len(structure) == 1

    def test_duplicate_index_rejected(self):
        table = VersionedTable(_schema(), StorageOptions())
        table.create_index(IndexDef("iv", "t", ("v",)))
        with pytest.raises(CatalogError):
            table.create_index(IndexDef("iv", "t", ("v",)))

    def test_drop_index(self):
        table = VersionedTable(_schema(), StorageOptions())
        table.create_index(IndexDef("iv", "t", ("v",)))
        assert table.drop_index("iv")
        assert not table.drop_index("iv")

    def test_rtree_index_on_period(self):
        table = VersionedTable(_schema(), StorageOptions())
        structure = table.create_index(
            IndexDef("ir", "t", ("sb", "se"), kind="rtree", partition="current")
        )
        rid = table.insert_version(_row(1, "a"), sys_begin=5)
        assert rid in structure.search_contains(6)


class TestColumnStoreTable:
    def test_column_layout_roundtrip(self):
        table = VersionedTable(
            _schema(), StorageOptions(store_kind="column", column_merge_threshold=2)
        )
        rids = [table.insert_version(_row(i, f"v{i}"), sys_begin=1) for i in range(5)]
        table.merge_column_store()
        for i, rid in enumerate(rids):
            assert table.fetch(CURRENT, rid)[1] == f"v{i}"

    def test_plain_update_nonversioned(self):
        schema = TableSchema(
            "p", [Column("id", SqlType.INTEGER), Column("v", SqlType.VARCHAR)],
            primary_key=("id",),
        )
        table = VersionedTable(schema, StorageOptions())
        rid = table.insert_version([1, "a"], sys_begin=None)
        table.plain_update(rid, [1, "b"])
        assert table.fetch(SINGLE, rid) == [1, "b"]
        assert table.plain_delete(rid)
        assert table.fetch(SINGLE, rid) is None
