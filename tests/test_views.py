"""CREATE VIEW support tests."""

import pytest

from repro.engine import Database
from repro.engine.errors import CatalogError, ProgrammingError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer, b integer)")
    database.execute("INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, 30)")
    database.execute("CREATE VIEW big AS SELECT a, b FROM t WHERE b > 10")
    return database


def test_select_from_view(db):
    assert db.execute("SELECT count(*) FROM big").scalar() == 2


def test_view_with_alias_and_qualified_columns(db):
    result = db.execute("SELECT v.a FROM big v WHERE v.b = 30")
    assert result.rows == [(3,)]


def test_view_joins_base_table(db):
    result = db.execute(
        "SELECT count(*) FROM big, t WHERE big.a = t.a"
    )
    assert result.scalar() == 2


def test_view_reflects_new_data(db):
    db.execute("INSERT INTO t (a, b) VALUES (4, 40)")
    assert db.execute("SELECT count(*) FROM big").scalar() == 3


def test_view_of_aggregate(db):
    db.execute(
        "CREATE VIEW totals AS SELECT a % 2 AS parity, sum(b) AS total"
        " FROM t GROUP BY a % 2"
    )
    rows = sorted(db.execute("SELECT parity, total FROM totals").rows)
    assert rows == [(0, 20), (1, 40)]


def test_drop_view(db):
    db.execute("DROP VIEW big")
    with pytest.raises(CatalogError):
        db.execute("SELECT * FROM big")
    with pytest.raises(CatalogError):
        db.execute("DROP VIEW big")


def test_name_collision_rejected(db):
    with pytest.raises(CatalogError):
        db.execute("CREATE VIEW t AS SELECT 1")
    with pytest.raises(CatalogError):
        db.execute("CREATE VIEW big AS SELECT 1")


def test_temporal_clause_on_view_rejected(db):
    with pytest.raises(ProgrammingError):
        db.execute("SELECT * FROM big FOR SYSTEM_TIME AS OF 1")


def test_view_over_temporal_table():
    db = Database()
    db.execute(
        "CREATE TABLE v (id integer NOT NULL, x integer,"
        " sb timestamp, se timestamp, PRIMARY KEY (id),"
        " PERIOD FOR system_time (sb, se))"
    )
    db.execute("INSERT INTO v (id, x) VALUES (1, 10)")
    db.execute("UPDATE v SET x = 20 WHERE id = 1")
    db.execute(
        "CREATE VIEW history AS SELECT id, x FROM v FOR SYSTEM_TIME ALL"
    )
    assert db.execute("SELECT count(*) FROM history").scalar() == 2
