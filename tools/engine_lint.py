#!/usr/bin/env python3
"""Engine-invariant linter: repo-specific checks ruff cannot express.

The benchmark engine has a handful of structural invariants that keep the
paper's measurements honest.  Each is cheap to verify statically, and each
has been broken (or nearly broken) by an innocent-looking edit before:

* **operator-guards** — every plan operator ``execute`` method that loops
  over rows must poll the ``ExecutionContext`` (``guard_iter`` wrapping or
  periodic ``check()`` calls).  A single unguarded loop makes timeouts and
  cancellation advisory, which silently invalidates the §5.1 timeout
  methodology.
* **no-wallclock** — engine code under ``src/repro/engine`` must never read
  the wall clock (``datetime.now``/``utcnow``/``today``, ``time.time``):
  system time is a logical, transaction-driven clock (``db.now()``), and
  wall-clock reads make runs non-reproducible.  ``time.perf_counter`` (a
  monotonic duration source) stays allowed for timeout accounting.
* **rewrite-invariants** — every rule named in ``ALL_RULES`` must declare
  its preserved invariants in ``RULE_INVARIANTS``, and every declaration
  must include ``result-equivalence``: a rewrite that changes results is a
  bug, not an optimisation.
* **layering** — ``engine/sql`` (lexer/parser/AST) must not import from
  ``engine/storage``, ``engine/plan`` or ``engine/index``; ``engine/storage``
  must not import from ``engine/sql`` or ``engine/plan``.  The parser has to
  stay usable for pure static analysis with no executor behind it.
* **profiles** — every ``ArchitectureProfile`` in ``src/repro/systems`` may
  only name rewrite rules that exist in ``ALL_RULES`` and may only suppress
  analyzer codes that exist in ``repro.engine.analyze``.  A typo here would
  silently disable nothing.
* **metric-names** — every metric name passed to ``.inc()``/``.observe()``
  on a metrics registry anywhere under ``src/repro`` must be declared in
  ``repro.engine.obs.metrics`` (``COUNTERS``/``HISTOGRAMS``).  The registry
  raises at runtime for undeclared counters, but only on the code path that
  increments them; this check catches the typo before any query runs.
* **span-catalogue** — every span name started on a tracer
  (``tracer.span("...")``/``tracer.start("...")``) under ``src/repro`` must
  appear in the span catalogue in ``docs/OBSERVABILITY.md``.  The profiler
  and the slow-query log surface these names verbatim; an undocumented span
  is a dashboard nobody can read.
* **cost-model** — ``engine/plan/cost.py`` (the cardinality estimator) must
  not import from ``engine/sql``: costing works on sketches the rewriter
  derives, so it stays usable without a parser behind it.  And every
  ``stats.*``/``plan.*`` counter literal passed to ``.inc()`` anywhere under
  ``src/repro`` must be declared in ``repro.engine.obs.metrics.COUNTERS`` —
  stricter than **metric-names** (no receiver filter), because the optimizer
  counters back the cost-model acceptance numbers and a silently dropped
  increment would fake a plan-choice regression.
* **telemetry-docs** — every OpenMetrics metric family the telemetry
  exposition can emit (registry counters/histograms mapped through the
  ``repro_``-prefix name mapping, plus the ``STATEMENT_METRICS`` statement
  families) and every ``STATEMENT_FIELDS`` statement-statistics column must
  be documented in ``docs/OBSERVABILITY.md``.  Same rationale as
  **span-catalogue**: these names are scraped by dashboards verbatim, so an
  undocumented one is a time series nobody can interpret.
* **rule-catalogue** — every analyzer rule code registered in
  ``repro.engine.analyze`` must have an entry in ``docs/ANALYZER.md`` and
  at least one positive and one negative golden test in
  ``tests/test_analyzer.py`` (``test_positive*`` / ``test_negative*``
  methods that mention the code).  An undocumented or untested rule is a
  diagnostic nobody can trust.
* **view-catalogue** — every system view in the ``SYSTEM_VIEWS`` literal of
  ``repro.engine.obs.introspect``, every column of every view, and every
  OpenMetrics family in ``INTROSPECTION_METRICS`` must be documented in
  ``docs/OBSERVABILITY.md``.  System views are the engine's SQL-facing
  introspection surface; an undocumented view column is a field users must
  reverse-engineer from the assembler code.
* **batch-protocol** — every ``Operator`` subclass under ``engine/plan``
  must speak the chunked batch protocol: it implements (or inherits)
  ``execute_batches`` and must not override the row-level ``execute``
  shim — a stray list-returning override would silently bypass batch
  dispatch, per-operator metrics and the materialization-boundary copy.
  Loop-bearing ``execute_batches`` bodies must poll the
  ``ExecutionContext`` (``check()`` at batch granularity, or
  ``guard_iter`` on a row-at-a-time fallback), mirroring
  **operator-guards** for the batch entrypoint.
* **temporal-ops-catalogue** — while the engine ships the native temporal
  operators (``TemporalAggregate`` / ``TemporalAlignJoin`` under
  ``engine/plan``), ``docs/TEMPORAL_OPS.md`` must exist and document both
  operators, the explicit dialect syntax (``GROUP BY TEMPORAL`` and
  ``TEMPORAL JOIN``), the ``temporal-fusion`` rewrite rule, the ``TQ017``
  analyzer rule and the ``plan.temporal_fusions`` counter — and
  ``docs/ARCHITECTURE.md`` / ``docs/SQL_DIALECT.md`` must link to it.  The
  operators replace rewrites the paper measured as two orders of magnitude
  slow; an undocumented operator is a speedup nobody will reach.

Run as ``python tools/engine_lint.py`` (exit 0 = clean); every check is also
importable for the test suite.  Standard library only.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
ENGINE = Path("src/repro/engine")

#: loop-bearing node types that force an execute() method to poll the context
_LOOPS = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
          ast.GeneratorExp)
#: wall-clock reads forbidden inside the engine (dotted-name prefixes)
_WALLCLOCK = ("datetime.now", "datetime.utcnow", "datetime.today",
              "datetime.datetime.now", "datetime.datetime.utcnow",
              "datetime.date.today", "date.today", "time.time",
              "time.localtime", "time.gmtime")
#: importing package -> forbidden sibling packages under repro.engine
_LAYERS = {
    "sql": ("storage", "plan", "index"),
    "storage": ("sql", "plan"),
}


def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(), filename=str(path))


def _dotted(node: ast.AST) -> str:
    """Flatten an Attribute/Name chain to ``a.b.c`` (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


# -- check 1: operator loops must poll the ExecutionContext ----------------

def _polls_context(node: ast.FunctionDef) -> bool:
    """True when the method names a context hook (guard_iter/check).

    Both guard styles name the hook as a string or an attribute:
        guard = getattr(env, "guard_iter", None)
        check = getattr(env, "check", None)
    """
    mentioned: Set[str] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            mentioned.add(inner.value)
        elif isinstance(inner, ast.Name):
            mentioned.add(inner.id)
        elif isinstance(inner, ast.Attribute):
            mentioned.add(inner.attr)
    return bool(mentioned & {"guard_iter", "check"})


def check_operator_guards(root: Path = REPO_ROOT) -> List[str]:
    problems = []
    for path in sorted((root / ENGINE / "plan").glob("*.py")):
        tree = _parse(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef) or node.name != "execute":
                continue
            has_loop = any(
                isinstance(inner, _LOOPS) for inner in ast.walk(node)
            )
            if not has_loop:
                continue
            if not _polls_context(node):
                problems.append(
                    f"{path.relative_to(root)}:{node.lineno}: "
                    f"[operator-guards] execute() loops over rows without "
                    f"polling the ExecutionContext (guard_iter/check)"
                )
    return problems


# -- check 2: no wall-clock reads inside the engine ------------------------

def check_no_wallclock(root: Path = REPO_ROOT) -> List[str]:
    problems = []
    for path in sorted((root / ENGINE).rglob("*.py")):
        tree = _parse(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            bare = name.split(".", 1)[-1] if name.startswith("self.") else name
            if bare in _WALLCLOCK:
                problems.append(
                    f"{path.relative_to(root)}:{node.lineno}: "
                    f"[no-wallclock] engine code calls {name}(); system time "
                    f"is the logical clock (db.now())"
                )
    return problems


# -- check 3: every rewrite rule declares its invariants -------------------

def _tuple_of_strings(node: ast.AST) -> Tuple[str, ...]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(
            e.value for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        )
    return ()


def _rewrite_declarations(root: Path) -> Tuple[Tuple[str, ...], Dict[str, Tuple[str, ...]]]:
    tree = _parse(root / ENGINE / "plan" / "rewrite.py")
    all_rules: Tuple[str, ...] = ()
    invariants: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if target.id == "ALL_RULES":
            all_rules = _tuple_of_strings(value)
        elif target.id == "RULE_INVARIANTS" and isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant):
                    invariants[key.value] = _tuple_of_strings(val)
    return all_rules, invariants


def check_rewrite_invariants(root: Path = REPO_ROOT) -> List[str]:
    problems = []
    where = ENGINE / "plan" / "rewrite.py"
    all_rules, invariants = _rewrite_declarations(root)
    if not all_rules:
        return [f"{where}: [rewrite-invariants] could not locate ALL_RULES"]
    for rule in all_rules:
        declared = invariants.get(rule)
        if declared is None:
            problems.append(
                f"{where}: [rewrite-invariants] rule {rule!r} is in ALL_RULES "
                f"but declares no invariants in RULE_INVARIANTS"
            )
        elif "result-equivalence" not in declared:
            problems.append(
                f"{where}: [rewrite-invariants] rule {rule!r} does not declare "
                f"result-equivalence; a rewrite that changes results is a bug"
            )
    for rule in invariants:
        if rule not in all_rules:
            problems.append(
                f"{where}: [rewrite-invariants] RULE_INVARIANTS names unknown "
                f"rule {rule!r} (not in ALL_RULES)"
            )
    return problems


# -- check 4: layer separation between sql / plan / storage ----------------

def _forbidden_import(module: str, level: int, forbidden: Tuple[str, ...]) -> bool:
    """True when a ``from`` target reaches into a forbidden sibling layer."""
    segments = [s for s in module.split(".") if s]
    if level > 0:  # relative: ..plan, ..storage.row_store, ...
        return bool(segments) and segments[0] in forbidden
    # absolute: repro.engine.plan...
    for i, segment in enumerate(segments):
        if segment == "engine" and i + 1 < len(segments):
            return segments[i + 1] in forbidden
    return False


def check_layering(root: Path = REPO_ROOT) -> List[str]:
    problems = []
    for package, forbidden in sorted(_LAYERS.items()):
        for path in sorted((root / ENGINE / package).glob("*.py")):
            tree = _parse(path)
            for node in ast.walk(tree):
                hits = []
                if isinstance(node, ast.ImportFrom):
                    if _forbidden_import(node.module or "", node.level, forbidden):
                        hits.append(node.module or ".")
                    elif node.level > 0 and not node.module:
                        # "from .. import plan" style
                        hits.extend(
                            a.name for a in node.names if a.name in forbidden
                        )
                elif isinstance(node, ast.Import):
                    hits.extend(
                        a.name for a in node.names
                        if _forbidden_import(a.name, 0, forbidden)
                    )
                for hit in hits:
                    problems.append(
                        f"{path.relative_to(root)}:{node.lineno}: "
                        f"[layering] engine/{package} must not import "
                        f"{hit!r} (keep the front-end executor-free)"
                    )
    return problems


# -- check 5: profiles only reference rules/codes that exist ---------------

def _analyzer_codes(root: Path) -> Set[str]:
    tree = _parse(root / ENGINE / "analyze.py")
    codes = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Rule"
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            codes.add(node.args[0].value)
    return codes


def check_profiles(root: Path = REPO_ROOT) -> List[str]:
    problems = []
    all_rules, _ = _rewrite_declarations(root)
    codes = _analyzer_codes(root)
    for path in sorted((root / "src/repro/systems").glob("system_*.py")):
        tree = _parse(path)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "ArchitectureProfile"
            ):
                continue
            for keyword in node.keywords:
                if keyword.arg == "rewrite_rules":
                    known, kind = set(all_rules), "rewrite rule"
                elif keyword.arg == "lint_suppressions":
                    known, kind = codes, "analyzer code"
                else:
                    continue
                for name in _tuple_of_strings(keyword.value):
                    if name not in known:
                        problems.append(
                            f"{path.relative_to(root)}:{keyword.value.lineno}: "
                            f"[profiles] unknown {kind} {name!r}"
                        )
    return problems


# -- check 6: incremented metric names are declared in the registry --------

def _declared_metrics(root: Path) -> Tuple[Set[str], Set[str]]:
    """(counter names, histogram names) declared in repro.engine.obs.metrics."""
    tree = _parse(root / ENGINE / "obs" / "metrics.py")
    counters: Set[str] = set()
    histograms: Set[str] = set()
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if not isinstance(target, ast.Name):
            continue
        if target.id in ("COUNTERS", "HISTOGRAMS") and isinstance(node.value, ast.Dict):
            bucket = counters if target.id == "COUNTERS" else histograms
            bucket.update(
                key.value for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
    return counters, histograms


def check_metric_names(root: Path = REPO_ROOT) -> List[str]:
    problems = []
    counters, histograms = _declared_metrics(root)
    if not counters:
        return [
            f"{ENGINE / 'obs' / 'metrics.py'}: [metric-names] could not "
            f"locate the COUNTERS declaration"
        ]
    declared = {"inc": counters, "observe": histograms}
    for path in sorted((root / "src/repro").rglob("*.py")):
        if path.name == "metrics.py" and path.parent.name == "obs":
            continue
        tree = _parse(path)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in declared
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            receiver = _dotted(node.func.value).lower()
            if "metric" not in receiver and "registry" not in receiver:
                continue  # .inc()/.observe() on something else entirely
            name = node.args[0].value
            if name not in declared[node.func.attr]:
                where = "COUNTERS" if node.func.attr == "inc" else "HISTOGRAMS"
                problems.append(
                    f"{path.relative_to(root)}:{node.lineno}: "
                    f"[metric-names] {node.func.attr}({name!r}) but {name!r} "
                    f"is not declared in repro.engine.obs.metrics.{where}"
                )
    return problems


# -- check 7: traced span names must be in the docs span catalogue ---------

def _span_call_sites(root: Path) -> List[Tuple[Path, int, str]]:
    """Every literal span name started on a tracer under src/repro.

    Matches ``<receiver>.span("name")`` / ``<receiver>.start("name")`` where
    the receiver's dotted path mentions a tracer; the tracer module itself is
    excluded (its internal ``self.start`` relays the caller's name).
    """
    sites: List[Tuple[Path, int, str]] = []
    for path in sorted((root / "src/repro").rglob("*.py")):
        if path.name == "tracer.py" and path.parent.name == "obs":
            continue
        tree = _parse(path)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("span", "start")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            if "tracer" not in _dotted(node.func.value).lower():
                continue
            sites.append((path, node.lineno, node.args[0].value))
    return sites


def check_span_catalogue(root: Path = REPO_ROOT) -> List[str]:
    sites = _span_call_sites(root)
    if not sites:
        return []  # nothing traced, nothing to document
    catalogue_path = root / "docs" / "OBSERVABILITY.md"
    if not catalogue_path.is_file():
        return [
            f"docs/OBSERVABILITY.md: [span-catalogue] missing, but "
            f"{len(sites)} tracer span call(s) exist under src/repro"
        ]
    catalogue = catalogue_path.read_text()
    problems = []
    for path, lineno, name in sites:
        if f"`{name}`" not in catalogue:
            problems.append(
                f"{path.relative_to(root)}:{lineno}: [span-catalogue] span "
                f"{name!r} is traced but not documented in "
                f"docs/OBSERVABILITY.md"
            )
    return problems


# -- check 8: cost model stays sql-free; optimizer counters declared -------

def check_cost_model(root: Path = REPO_ROOT) -> List[str]:
    problems = []
    cost_path = root / ENGINE / "plan" / "cost.py"
    if not cost_path.is_file():
        return [
            f"{ENGINE / 'plan' / 'cost.py'}: [cost-model] missing — the "
            f"cardinality estimator is a declared subsystem"
        ]
    tree = _parse(cost_path)
    for node in ast.walk(tree):
        hits = []
        if isinstance(node, ast.ImportFrom):
            if _forbidden_import(node.module or "", node.level, ("sql",)):
                hits.append(node.module or ".")
            elif node.level > 0 and not node.module:
                hits.extend(a.name for a in node.names if a.name == "sql")
        elif isinstance(node, ast.Import):
            hits.extend(
                a.name for a in node.names
                if _forbidden_import(a.name, 0, ("sql",))
            )
        for hit in hits:
            problems.append(
                f"{cost_path.relative_to(root)}:{node.lineno}: [cost-model] "
                f"plan/cost.py must not import {hit!r} (costing sees "
                f"sketches, never AST)"
            )
    counters, _ = _declared_metrics(root)
    for path in sorted((root / "src/repro").rglob("*.py")):
        if path.name == "metrics.py" and path.parent.name == "obs":
            continue
        for node in ast.walk(_parse(path)):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "inc"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            if not name.startswith(("stats.", "plan.")):
                continue
            if name not in counters:
                problems.append(
                    f"{path.relative_to(root)}:{node.lineno}: [cost-model] "
                    f"optimizer counter {name!r} is incremented but not "
                    f"declared in repro.engine.obs.metrics.COUNTERS"
                )
    return problems


# -- check 9: operators speak the chunked batch protocol -------------------

def _class_bases(node: ast.ClassDef) -> List[str]:
    """Base-class names of one ClassDef (``Operator`` / ``ops.Operator``)."""
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def check_batch_protocol(root: Path = REPO_ROOT) -> List[str]:
    # collect every module-level class under engine/plan (subclasses in
    # planner.py spell the base as ops.Operator, so match by last segment)
    classes: Dict[str, Tuple[Path, ast.ClassDef]] = {}
    for path in sorted((root / ENGINE / "plan").glob("*.py")):
        tree = _parse(path)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                classes[node.name] = (path, node)
    if "Operator" not in classes:
        return []  # no operator base, nothing to enforce
    # transitive closure of Operator subclasses
    operator_like: Set[str] = {"Operator"}
    changed = True
    while changed:
        changed = False
        for name, (_path, node) in classes.items():
            if name in operator_like:
                continue
            if any(base in operator_like for base in _class_bases(node)):
                operator_like.add(name)
                changed = True
    # classes that implement the batch entrypoint themselves (the root's
    # NotImplementedError stub does not count as an implementation)
    implementers = {
        name for name, (_path, node) in classes.items()
        if name != "Operator" and any(
            isinstance(inner, ast.FunctionDef)
            and inner.name == "execute_batches"
            for inner in node.body
        )
    }

    def inherits_entrypoint(name: str, seen: Set[str]) -> bool:
        if name in implementers:
            return True
        if name in seen or name not in classes:
            return False
        seen.add(name)
        return any(
            inherits_entrypoint(base, seen)
            for base in _class_bases(classes[name][1])
        )

    problems = []
    for name in sorted(operator_like - {"Operator"}):
        path, node = classes[name]
        for inner in node.body:
            if isinstance(inner, ast.FunctionDef) and inner.name == "execute":
                problems.append(
                    f"{path.relative_to(root)}:{inner.lineno}: "
                    f"[batch-protocol] {name} overrides the row-level "
                    f"execute() shim; implement execute_batches() so batch "
                    f"dispatch and the materialization boundary stay intact"
                )
        if not inherits_entrypoint(name, set()):
            problems.append(
                f"{path.relative_to(root)}:{node.lineno}: "
                f"[batch-protocol] {name} neither implements nor inherits "
                f"execute_batches()"
            )
    # loop-bearing batch entrypoints must poll the context per batch
    for path in sorted((root / ENGINE / "plan").glob("*.py")):
        tree = _parse(path)
        for node in ast.walk(tree):
            if (
                not isinstance(node, ast.FunctionDef)
                or node.name != "execute_batches"
            ):
                continue
            has_loop = any(
                isinstance(inner, _LOOPS) for inner in ast.walk(node)
            )
            if has_loop and not _polls_context(node):
                problems.append(
                    f"{path.relative_to(root)}:{node.lineno}: "
                    f"[batch-protocol] execute_batches() loops without "
                    f"polling the ExecutionContext (check per batch or "
                    f"guard_iter on the row fallback)"
                )
    return problems


# -- check 10: telemetry metric families and columns are documented --------

def _telemetry_declarations(root: Path) -> Tuple[Set[str], Set[str]]:
    """(statement metric families, statement field names) declared in the
    ``STATEMENT_METRICS`` / ``STATEMENT_FIELDS`` literal dicts of
    repro.engine.obs.telemetry."""
    tree = _parse(root / ENGINE / "obs" / "telemetry.py")
    families: Set[str] = set()
    fields: Set[str] = set()
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if not isinstance(target, ast.Name):
            continue
        if target.id in ("STATEMENT_METRICS", "STATEMENT_FIELDS") and isinstance(
            node.value, ast.Dict
        ):
            bucket = families if target.id == "STATEMENT_METRICS" else fields
            bucket.update(
                key.value for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
    return families, fields


def _openmetrics_family(name: str, histogram: bool = False) -> str:
    """The exposition family name of a registry metric — mirrors
    ``repro.engine.obs.telemetry.counter_family``/``histogram_family``
    (a unit test cross-checks the two against a rendered exposition so
    this static copy cannot drift)."""
    flat = name.replace(".", "_")
    if histogram and flat.endswith("_s"):
        flat = flat[:-2] + "_seconds"
    return "repro_" + flat


def check_telemetry_docs(root: Path = REPO_ROOT) -> List[str]:
    telemetry_rel = ENGINE / "obs" / "telemetry.py"
    if not (root / telemetry_rel).is_file():
        return [
            f"{telemetry_rel}: [telemetry-docs] missing — workload telemetry "
            f"is a declared subsystem"
        ]
    families, fields = _telemetry_declarations(root)
    if not families or not fields:
        return [
            f"{telemetry_rel}: [telemetry-docs] could not locate the "
            f"STATEMENT_METRICS / STATEMENT_FIELDS literal dicts"
        ]
    counters, histograms = _declared_metrics(root)
    expected = dict.fromkeys(sorted(families), "statement metric family")
    for name in sorted(counters):
        expected[_openmetrics_family(name)] = f"counter family (for {name!r})"
    for name in sorted(histograms):
        expected[_openmetrics_family(name, histogram=True)] = (
            f"histogram family (for {name!r})"
        )
    doc_rel = Path("docs") / "OBSERVABILITY.md"
    doc_path = root / doc_rel
    if not doc_path.is_file():
        return [
            f"{doc_rel}: [telemetry-docs] missing, but the telemetry "
            f"exposition emits {len(expected)} metric families"
        ]
    doc_text = doc_path.read_text()
    problems = []
    for family, kind in expected.items():
        if f"`{family}`" not in doc_text:
            problems.append(
                f"{doc_rel}: [telemetry-docs] OpenMetrics {kind} "
                f"{family!r} is exposed but not documented here"
            )
    for field in sorted(fields):
        if f"`{field}`" not in doc_text:
            problems.append(
                f"{doc_rel}: [telemetry-docs] statement-statistics column "
                f"{field!r} is exposed but not documented here"
            )
    return problems


# -- check 11: system views and their columns are documented ---------------

def _introspect_declarations(
    root: Path,
) -> Tuple[Dict[str, Set[str]], Set[str]]:
    """(view name -> column names, OpenMetrics family names) declared in the
    ``SYSTEM_VIEWS`` / ``INTROSPECTION_METRICS`` literal dicts of
    repro.engine.obs.introspect."""
    tree = _parse(root / ENGINE / "obs" / "introspect.py")
    views: Dict[str, Set[str]] = {}
    families: Set[str] = set()
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        if target.id == "SYSTEM_VIEWS":
            for key, value in zip(node.value.keys, node.value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue
                columns: Set[str] = set()
                if isinstance(value, ast.Dict):
                    columns = {
                        c.value for c in value.keys
                        if isinstance(c, ast.Constant)
                        and isinstance(c.value, str)
                    }
                views[key.value] = columns
        elif target.id == "INTROSPECTION_METRICS":
            families.update(
                key.value for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
    return views, families


def check_view_catalogue(root: Path = REPO_ROOT) -> List[str]:
    introspect_rel = ENGINE / "obs" / "introspect.py"
    if not (root / introspect_rel).is_file():
        return [
            f"{introspect_rel}: [view-catalogue] missing — system-view "
            f"introspection is a declared subsystem"
        ]
    views, families = _introspect_declarations(root)
    if not views or not families:
        return [
            f"{introspect_rel}: [view-catalogue] could not locate the "
            f"SYSTEM_VIEWS / INTROSPECTION_METRICS literal dicts"
        ]
    doc_rel = Path("docs") / "OBSERVABILITY.md"
    doc_path = root / doc_rel
    if not doc_path.is_file():
        return [
            f"{doc_rel}: [view-catalogue] missing, but the engine exposes "
            f"{len(views)} system views"
        ]
    doc_text = doc_path.read_text()
    problems: List[str] = []
    for view in sorted(views):
        if f"`{view}`" not in doc_text:
            problems.append(
                f"{doc_rel}: [view-catalogue] system view {view!r} is "
                f"queryable but not documented here"
            )
        for column in sorted(views[view]):
            if f"`{column}`" not in doc_text:
                problems.append(
                    f"{doc_rel}: [view-catalogue] column {column!r} of "
                    f"system view {view!r} is exposed but not documented here"
                )
    for family in sorted(families):
        if f"`{family}`" not in doc_text:
            problems.append(
                f"{doc_rel}: [view-catalogue] introspection OpenMetrics "
                f"family {family!r} is exposed but not documented here"
            )
    return problems


# -- check 12: analyzer rules are documented and golden-tested -------------

def check_rule_catalogue(root: Path = REPO_ROOT) -> List[str]:
    codes = sorted(_analyzer_codes(root))
    if not codes:
        return []
    problems: List[str] = []
    doc_rel = Path("docs") / "ANALYZER.md"
    doc_path = root / doc_rel
    doc_text = doc_path.read_text() if doc_path.is_file() else None
    tests_rel = Path("tests") / "test_analyzer.py"
    tests_path = root / tests_rel
    positive: Set[str] = set()
    negative: Set[str] = set()
    if tests_path.is_file():
        for node in _parse(tests_path).body:
            if not isinstance(node, ast.ClassDef):
                continue
            class_codes = {c for c in codes if c in node.name}
            for inner in node.body:
                if not isinstance(inner, ast.FunctionDef):
                    continue
                if inner.name.startswith("test_positive"):
                    bucket = positive
                elif inner.name.startswith("test_negative"):
                    bucket = negative
                else:
                    continue
                referenced = set(class_codes)
                for leaf in ast.walk(inner):
                    if isinstance(leaf, ast.Constant) and isinstance(leaf.value, str):
                        referenced.update(c for c in codes if c in leaf.value)
                bucket.update(referenced)
    if doc_text is None:
        problems.append(
            f"{doc_rel}: [rule-catalogue] missing, but {len(codes)} analyzer "
            f"rule(s) are registered in analyze.py and need documenting"
        )
    for code in codes:
        if doc_text is not None and code not in doc_text:
            problems.append(
                f"{doc_rel}: [rule-catalogue] analyzer rule {code} is "
                f"registered in analyze.py but has no entry here"
            )
        if code not in positive:
            problems.append(
                f"{tests_rel}: [rule-catalogue] analyzer rule {code} has no "
                f"positive golden test (a test_positive* method that "
                f"mentions it)"
            )
        if code not in negative:
            problems.append(
                f"{tests_rel}: [rule-catalogue] analyzer rule {code} has no "
                f"negative golden test (a test_negative* method that "
                f"mentions it)"
            )
    return problems


def check_temporal_ops_catalogue(root: Path = REPO_ROOT) -> List[str]:
    operators_rel = ENGINE / "plan" / "operators.py"
    operators_path = root / operators_rel
    if not operators_path.is_file():
        return []
    operators_text = operators_path.read_text()
    shipped = [
        name
        for name in ("TemporalAggregate", "TemporalAlignJoin")
        if f"class {name}" in operators_text
    ]
    if not shipped:
        return []
    doc_rel = Path("docs") / "TEMPORAL_OPS.md"
    doc_path = root / doc_rel
    if not doc_path.is_file():
        return [
            f"{doc_rel}: [temporal-ops-catalogue] missing, but the engine "
            f"ships the native temporal operators ({', '.join(shipped)})"
        ]
    doc_text = doc_path.read_text()
    problems: List[str] = []
    required = list(shipped) + [
        # the dialect surface, the fusion rule and its observability
        "GROUP BY TEMPORAL",
        "TEMPORAL JOIN",
        "temporal-fusion",
        "TQ017",
        "plan.temporal_fusions",
    ]
    for token in required:
        if token not in doc_text:
            problems.append(
                f"{doc_rel}: [temporal-ops-catalogue] must document "
                f"{token!r} — it is part of the native temporal-operator "
                f"surface"
            )
    for linking_doc in ("ARCHITECTURE.md", "SQL_DIALECT.md"):
        linking_rel = Path("docs") / linking_doc
        linking_path = root / linking_rel
        if not linking_path.is_file():
            continue
        if "TEMPORAL_OPS.md" not in linking_path.read_text():
            problems.append(
                f"{linking_rel}: [temporal-ops-catalogue] must link to "
                f"TEMPORAL_OPS.md — the native operators hook into the "
                f"surface this page documents"
            )
    return problems


ALL_CHECKS = (
    check_operator_guards,
    check_no_wallclock,
    check_rewrite_invariants,
    check_layering,
    check_profiles,
    check_metric_names,
    check_span_catalogue,
    check_cost_model,
    check_batch_protocol,
    check_telemetry_docs,
    check_view_catalogue,
    check_rule_catalogue,
    check_temporal_ops_catalogue,
)


def run_all(root: Path = REPO_ROOT) -> List[str]:
    problems: List[str] = []
    for check in ALL_CHECKS:
        problems.extend(check(root))
    return problems


def main(argv: List[str] = None) -> int:
    root = Path(argv[0]).resolve() if argv else REPO_ROOT
    problems = run_all(root)
    for problem in problems:
        print(problem)
    checks = ", ".join(c.__name__.replace("check_", "") for c in ALL_CHECKS)
    if problems:
        print(f"engine_lint: {len(problems)} problem(s) ({checks})")
        return 1
    print(f"engine_lint: clean ({checks})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
